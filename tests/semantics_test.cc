// Golden-case semantics tests: hand-constructed streams with known match
// sets, pinning down skip-till-any-match behaviour, window boundaries,
// and the paper's own introductory examples.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "cep/oracle.h"
#include "pattern/builder.h"
#include "stream/generator.h"

namespace dlacep {
namespace {

std::shared_ptr<Schema> TestSchema() { return MakeSyntheticSchema(5, 1); }

MatchSet Evaluate(const Pattern& pattern, const EventStream& stream) {
  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  EXPECT_TRUE(engine.ok());
  MatchSet out;
  EXPECT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()}, &out)
                  .ok());
  return out;
}

// The paper's Fig 1(b)/Fig 2 stream: one true match (A1, B1, C1) among
// decoys that build partial matches which never complete.
TEST(PaperExamples, Figure2SingleMatchAmongDiscardedPrefixes) {
  auto schema = TestSchema();
  EventStream stream(schema);
  // Stream: A1 A2 B1 B2 C1 where only C1's value exceeds A1/B1's.
  stream.Append(0, 0, {1.0});   // A1  (id 0)
  stream.Append(0, 1, {9.0});   // A2  (id 1) — too large for any C
  stream.Append(1, 2, {2.0});   // B1  (id 2)
  stream.Append(1, 3, {8.5});   // B2  (id 3) — too large
  stream.Append(2, 4, {3.0});   // C1  (id 4)

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"), b.Prim("C", "c"));
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "c");
  b.WhereCmp(1.0, "bb", "vol", CmpOp::kLt, 1.0, "c");
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(5));

  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  MatchSet out;
  ASSERT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()}, &out)
                  .ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Match({0, 2, 4})));
  // The discarded prefixes (A2, B2 combinations) were still created and
  // counted — the waste the paper motivates DLACEP with.
  EXPECT_GT(engine.value()->stats().partial_matches, 3u);
}

TEST(SkipTillAnyMatch, EverySubsetCombinationIsEmitted) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A (id 0)
  stream.Append(0, 1, {0.0});  // A (id 1)
  stream.Append(1, 2, {0.0});  // B (id 2)
  stream.Append(1, 3, {0.0});  // B (id 3)

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(4));
  const MatchSet out = Evaluate(pattern, stream);
  // Skip-till-any-match: all 2×2 ordered combinations.
  EXPECT_EQ(out.size(), 4u);
  EXPECT_TRUE(out.Contains(Match({0, 2})));
  EXPECT_TRUE(out.Contains(Match({0, 3})));
  EXPECT_TRUE(out.Contains(Match({1, 2})));
  EXPECT_TRUE(out.Contains(Match({1, 3})));
}

TEST(SkipTillAnyMatch, InterveningEventsAreSkipped) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(2, 1, {0.0});  // C — irrelevant, must be skipped
  stream.Append(2, 2, {0.0});  // C
  stream.Append(1, 3, {0.0});  // B

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(5));
  const MatchSet out = Evaluate(pattern, stream);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Match({0, 3})));
}

TEST(CountWindowBoundary, SpanExactlyWMinusOneIsInWMIsOut) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});                          // A at id 0
  for (int i = 0; i < 8; ++i) stream.Append(2, i + 1, {0.0});  // filler C
  stream.Append(1, 9, {0.0});                          // B at id 9

  PatternBuilder b10(schema);
  auto root10 = b10.Seq(b10.Prim("A", "a"), b10.Prim("B", "bb"));
  // Span = 9 = W - 1 for W = 10: inside.
  EXPECT_EQ(Evaluate(b10.BuildOrDie(std::move(root10),
                                    WindowSpec::Count(10)),
                     stream)
                .size(),
            1u);
  PatternBuilder b9(schema);
  auto root9 = b9.Seq(b9.Prim("A", "a"), b9.Prim("B", "bb"));
  // Span = 9 > W - 1 for W = 9: outside.
  EXPECT_TRUE(Evaluate(b9.BuildOrDie(std::move(root9),
                                     WindowSpec::Count(9)),
                       stream)
                  .empty());
}

TEST(SequenceOrder, OutOfOrderEventsNeverMatch) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(1, 0, {0.0});  // B first
  stream.Append(0, 1, {0.0});  // A second

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  EXPECT_TRUE(
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(5)), stream)
          .empty());
}

TEST(Conjunction, AnyOrderMatchesOnce) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(1, 0, {0.0});  // B before A
  stream.Append(0, 1, {0.0});  // A

  PatternBuilder b(schema);
  auto root = b.Conj(b.Prim("A", "a"), b.Prim("B", "bb"));
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(5)), stream);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Match({0, 1})));
}

TEST(KleeneClosure, EmitsEveryPrefixRunAboveMin) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(1, 1, {0.0});  // B1
  stream.Append(1, 2, {0.0});  // B2

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Kleene(b.Prim("B", "k"), 1, 3));
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(5)), stream);
  // {A,B1}, {A,B2}, {A,B1,B2}.
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.Contains(Match({0, 1, 2})));
}

TEST(GroupKleene, RepetitionsMustBeDisjointAndOrdered) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A1
  stream.Append(1, 1, {0.0});  // B1
  stream.Append(0, 2, {0.0});  // A2
  stream.Append(1, 3, {0.0});  // B2

  PatternBuilder b(schema);
  auto root = b.Kleene(b.Seq(b.Prim("A", "a"), b.Prim("B", "bb")), 1, 2);
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(6)), stream);
  // Single repetitions: (A1,B1), (A1,B3?)... pairs with A before B:
  // (0,1), (0,3), (2,3) — and the double repetition (0,1,2,3).
  EXPECT_EQ(out.size(), 4u);
  EXPECT_TRUE(out.Contains(Match({0, 1, 2, 3})));
}

TEST(Negation, VetoAppliesOnlyStrictlyBetween) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(2, 0, {0.0});  // C before A: harmless
  stream.Append(0, 1, {0.0});  // A
  stream.Append(1, 2, {0.0});  // B
  stream.Append(2, 3, {0.0});  // C after B: harmless

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Neg(b.Prim("C", "nc")),
                    b.Prim("B", "bb"));
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(6)), stream);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Match({1, 2})));
}

// Evaluates the nested-NEG pattern SEQ(A, NEG(SEQ(C, D)), B).
MatchSet ForVeto(std::shared_ptr<Schema> schema,
                 const EventStream& stream) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(
      b.Prim("A", "a"),
      b.Neg(b.Seq(b.Prim("C", "nc"), b.Prim("D", "nd"))),
      b.Prim("B", "bb"));
  return Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(6)),
                  stream);
}

TEST(Negation, NestedSeqVetoRequiresTheWholeSubsequence) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(2, 1, {0.0});  // C — only half of NEG(SEQ(C, D))
  stream.Append(1, 2, {0.0});  // B

  PatternBuilder b(schema);
  auto root = b.Seq(
      b.Prim("A", "a"),
      b.Neg(b.Seq(b.Prim("C", "nc"), b.Prim("D", "nd"))),
      b.Prim("B", "bb"));
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(6)), stream);
  EXPECT_EQ(out.size(), 1u);  // C alone does not veto

  // Now complete the negated subsequence inside the interval.
  EventStream vetoed(schema);
  vetoed.Append(0, 0, {0.0});  // A
  vetoed.Append(2, 1, {0.0});  // C
  vetoed.Append(3, 2, {0.0});  // D
  vetoed.Append(1, 3, {0.0});  // B
  EXPECT_TRUE(ForVeto(schema, vetoed).empty());
}

TEST(Disjunction, UnionWithoutDoubleCounting) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(1, 1, {0.0});  // B

  PatternBuilder b(schema);
  // Both branches match the same (A, B) pair — the union must contain
  // the subset once.
  auto root = b.Disj(b.Seq(b.Prim("A", "a1"), b.Prim("B", "b1")),
                     b.Seq(b.Prim("A", "a2"), b.Prim("B", "b2")));
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(5)), stream);
  EXPECT_EQ(out.size(), 1u);
}

TEST(MultiTypePositions, AnyOfMatchesEachMemberOnce) {
  auto schema = TestSchema();
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(1, 1, {0.0});  // B
  stream.Append(3, 2, {0.0});  // D

  PatternBuilder b(schema);
  auto root = b.Seq(b.PrimAnyOf({"A", "B"}, "x"), b.Prim("D", "y"));
  const MatchSet out =
      Evaluate(b.BuildOrDie(std::move(root), WindowSpec::Count(5)), stream);
  EXPECT_EQ(out.size(), 2u);  // (A,D) and (B,D)
}

}  // namespace
}  // namespace dlacep
