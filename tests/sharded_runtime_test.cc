// Sharded runtime tests: the thread-per-core sharded OnlineDlacep
// (OnlineConfig::num_shards >= 1) must be byte-identical — marks,
// matches, accounting, overload/health trajectories — to the legacy
// worker-pool runtime and to the batch pipeline at EVERY shard count.
// Routing is an implementation detail; only throughput may change.
//
// Also covers the ConsistentHashRing (determinism, coverage, minimal
// remap on growth), window routing keys, per-shard stats aggregation,
// and checkpoint kill-and-restore across runtime modes. The whole file
// must pass under TSan (see the CI sanitizer job).

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "dlacep/shedding_filter.h"
#include "pattern/builder.h"
#include "runtime/checkpoint.h"
#include "runtime/fault_injection.h"
#include "runtime/online.h"
#include "runtime/shard.h"
#include "runtime/source.h"
#include "stream/stocksim.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

void ExpectSameMatches(const MatchSet& a, const MatchSet& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.IntersectionSize(b), a.size());
}

// ---------------------------------------------------------------------
// ConsistentHashRing.

TEST(ConsistentHashRing, DeterministicAndInRange) {
  const ConsistentHashRing a(4);
  const ConsistentHashRing b(4);
  for (TypeId symbol = -1; symbol < 500; ++symbol) {
    const size_t shard = a.ShardFor(symbol);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, b.ShardFor(symbol)) << "symbol=" << symbol;
  }
}

TEST(ConsistentHashRing, EveryShardOwnsSomeSymbols) {
  const ConsistentHashRing ring(8);
  std::set<size_t> seen;
  for (TypeId symbol = 0; symbol < 5000; ++symbol) {
    seen.insert(ring.ShardFor(symbol));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ConsistentHashRing, SingleShardOwnsEverything) {
  const ConsistentHashRing ring(1);
  for (TypeId symbol = -1; symbol < 100; ++symbol) {
    EXPECT_EQ(ring.ShardFor(symbol), 0u);
  }
}

TEST(ConsistentHashRing, GrowthRemapsOnlyToTheNewShard) {
  // The consistent-hashing contract: adding shard 4 may steal keys from
  // the existing shards, but every key that moves must move TO the new
  // shard (vnode points are independent of the shard count, so only a
  // new vnode can change a key's successor), and only a minority of
  // keys move at all.
  const ConsistentHashRing before(4);
  const ConsistentHashRing after(5);
  size_t moved = 0;
  const TypeId kKeys = 2000;
  for (TypeId symbol = 0; symbol < kKeys; ++symbol) {
    const size_t old_shard = before.ShardFor(symbol);
    const size_t new_shard = after.ShardFor(symbol);
    if (old_shard != new_shard) {
      ++moved;
      EXPECT_EQ(new_shard, 4u) << "symbol=" << symbol;
    }
  }
  EXPECT_GT(moved, 0u);
  // Expected move fraction is 1/5; modulo hashing would move ~4/5.
  EXPECT_LT(moved, static_cast<size_t>(kKeys) / 2);
}

TEST(WindowRoutingSymbol, HeadNonBlankSymbolOrBlank) {
  EventStream window(MakeStockSchema(4));
  EXPECT_EQ(WindowRoutingSymbol(window), kBlankType);  // empty
  window.AppendBlank(0.0);
  EXPECT_EQ(WindowRoutingSymbol(window), kBlankType);  // all blank
  window.Append(2, 1.0, {5.0});
  window.Append(0, 2.0, {6.0});
  EXPECT_EQ(WindowRoutingSymbol(window), 2);  // first non-blank wins
}

// ---------------------------------------------------------------------
// Byte-equality across shard counts (the tentpole contract).

/// SEQ(S0 a, S1 b) with an ascending-volume condition — a two-symbol
/// pattern over the stock schema, so type-shedding has irrelevant
/// traffic to drop and the exchange stage sees symbol sets that span
/// shards at every shard count.
Pattern StockSeqPattern(std::shared_ptr<const Schema> schema,
                        size_t window) {
  PatternBuilder builder(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  children.push_back(builder.Prim("S0", "a"));
  children.push_back(builder.Prim("S1", "b"));
  auto root = builder.SeqOf(std::move(children));
  builder.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.2, "b");
  return builder.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

/// Content-based filter: relay events whose volume clears a gate. Pure
/// function of the event payload, so any routing must reproduce it.
class VolGateFilter : public StreamFilter {
 public:
  explicit VolGateFilter(double gate) : gate_(gate) {}

  std::string name() const override { return "vol-gate"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    std::vector<int> marks(range.size(), 0);
    for (size_t t = 0; t < range.size(); ++t) {
      const Event& e = stream[range.begin + t];
      if (!e.is_blank() && !e.attrs.empty() && e.attrs[0] > gate_) {
        marks[t] = 1;
      }
    }
    return marks;
  }

 private:
  double gate_;
};

/// A Zipf-skewed stock stream: hot symbols concentrate on few shards,
/// which is exactly the routing regime that must not perturb output.
EventStream ZipfStream() {
  StockSimConfig config;
  config.num_events = 4000;
  config.num_symbols = 12;
  config.zipf_exponent = 1.4;
  config.seed = 21;
  return GenerateStockStream(config);
}

struct EqualityCase {
  const EventStream* stream;
  const Pattern* pattern;
  const StreamFilter* filter;
  size_t mark_size = 0;
  size_t step_size = 0;
  size_t batch_size = 1;
};

PipelineResult BatchReference(const EqualityCase& c,
                              std::unique_ptr<StreamFilter> filter) {
  DlacepConfig config;
  config.num_threads = 1;
  config.mark_size = c.mark_size;
  config.step_size = c.step_size;
  DlacepPipeline pipeline(*c.pattern, std::move(filter), config);
  return pipeline.Evaluate(*c.stream);
}

// Runs the sharded runtime at several shard counts and checks marks,
// relayed-event counts, matches, accounting, and per-shard stats
// aggregation against the batch pipeline result (which the legacy
// runtime is already pinned to by tests/runtime_test.cc).
void CheckShardedMatchesBatch(const EqualityCase& c,
                              const PipelineResult& batch) {
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    OnlineConfig config;
    config.num_shards = shards;
    config.queue_capacity = 64;
    config.mark_size = c.mark_size;
    config.step_size = c.step_size;
    config.batch_size = c.batch_size;
    config.overload.enabled = false;  // lossless backpressure only
    OnlineDlacep online(*c.pattern, c.filter, config);
    ReplaySource source(c.stream);
    const OnlineResult result = online.Run(&source);

    EXPECT_EQ(result.marked_ids, batch.marked_ids) << "shards=" << shards;
    EXPECT_EQ(result.marked_events, batch.marked_events)
        << "shards=" << shards;
    ExpectSameMatches(result.matches, batch.matches);

    EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
    EXPECT_EQ(result.stats.events_ingested, c.stream->size());
    EXPECT_EQ(result.stats.events_dropped_queue, 0u);

    // Per-shard accounting must aggregate to the global counters: every
    // closed window routed to exactly one shard and marked exactly once.
    ASSERT_EQ(result.stats.shards.size(), shards);
    uint64_t routed = 0;
    uint64_t marked = 0;
    for (const ShardStats& s : result.stats.shards) {
      routed += s.windows_routed;
      marked += s.windows_marked;
      EXPECT_LE(s.windows_marked, s.windows_routed);
    }
    EXPECT_EQ(routed, result.stats.windows_closed) << "shards=" << shards;
    EXPECT_EQ(marked, result.stats.windows_closed) << "shards=" << shards;
  }
}

TEST(ShardedEquality, PassThroughOnZipfStream) {
  const EventStream stream = ZipfStream();
  const Pattern pattern = StockSeqPattern(stream.schema_ptr(), 12);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter};
  CheckShardedMatchesBatch(
      c, BatchReference(c, std::make_unique<PassThroughFilter>()));
}

TEST(ShardedEquality, TypeSheddingOnZipfStream) {
  const EventStream stream = ZipfStream();
  const Pattern pattern = StockSeqPattern(stream.schema_ptr(), 12);
  TypeSheddingFilter filter(pattern);
  EqualityCase c{&stream, &pattern, &filter};
  CheckShardedMatchesBatch(
      c, BatchReference(c, std::make_unique<TypeSheddingFilter>(pattern)));
}

TEST(ShardedEquality, RandomSheddingOnZipfStream) {
  const EventStream stream = ZipfStream();
  const Pattern pattern = StockSeqPattern(stream.schema_ptr(), 12);
  RandomSheddingFilter filter(0.5, 0x5eed);
  EqualityCase c{&stream, &pattern, &filter};
  CheckShardedMatchesBatch(
      c,
      BatchReference(c, std::make_unique<RandomSheddingFilter>(0.5, 0x5eed)));
}

TEST(ShardedEquality, ContentFilterOnZipfStream) {
  const EventStream stream = ZipfStream();
  const Pattern pattern = StockSeqPattern(stream.schema_ptr(), 12);
  VolGateFilter filter(20.0);
  EqualityCase c{&stream, &pattern, &filter};
  CheckShardedMatchesBatch(
      c, BatchReference(c, std::make_unique<VolGateFilter>(20.0)));
}

TEST(ShardedEquality, ShardLocalMicroBatchingPreservesOutput) {
  // batch_size > 1 moves the micro-batch grouping into the shard
  // workers (adjacent batchable tasks in a burst) — output must not
  // notice.
  const EventStream stream = ZipfStream();
  const Pattern pattern = StockSeqPattern(stream.schema_ptr(), 12);
  VolGateFilter filter(20.0);
  EqualityCase c{&stream, &pattern, &filter};
  c.batch_size = 4;
  CheckShardedMatchesBatch(
      c, BatchReference(c, std::make_unique<VolGateFilter>(20.0)));
}

TEST(ShardedEquality, NonDefaultGeometryAndSmallStream) {
  const EventStream stream = SmallStream(900, 19);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 12);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter, /*mark_size=*/30,
                 /*step_size=*/10};
  CheckShardedMatchesBatch(
      c, BatchReference(c, std::make_unique<PassThroughFilter>()));
}

// ---------------------------------------------------------------------
// Overload determinism across shard counts.

OnlineResult RunOnline(const EventStream& stream, const Pattern& pattern,
                       const StreamFilter* filter,
                       const OnlineConfig& config) {
  OnlineDlacep online(pattern, filter, config);
  ReplaySource source(&stream);
  return online.Run(&source);
}

TEST(ShardedOverload, EscalationLadderIsShardCountInvariant) {
  // Watermarks rigged so the pressure signal is a constant: high = 0
  // makes every queue fraction pressure, low < 0 makes relief
  // impossible. The controller's level is then a pure function of the
  // window index (escalate every dwell_windows), so boosted/shed window
  // sets — and with the head-arrival-id shedding salt, the shed marks
  // themselves — must be byte-identical at every shard count.
  const EventStream stream = SmallStream(1500, 33);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter filter;

  OnlineConfig base;
  base.queue_capacity = 64;
  base.overload.enabled = true;
  base.overload.high_watermark = 0.0;
  base.overload.low_watermark = -1.0;
  base.overload.latency_high_seconds = 0.0;
  base.overload.dwell_windows = 2;
  base.overload.shedding = SheddingPolicy::kRandom;

  OnlineConfig legacy = base;
  legacy.num_threads = 2;
  const OnlineResult reference = RunOnline(stream, pattern, &filter, legacy);

  // Windows 0..1 run at level 0, 1..2 boosted, everything after shed.
  EXPECT_EQ(reference.stats.overload_escalations, 2u);
  EXPECT_EQ(reference.stats.overload_level_at_exit, 2);
  EXPECT_EQ(reference.stats.windows_boosted, 2u);
  EXPECT_EQ(reference.stats.windows_shed,
            reference.stats.windows_closed - 3);
  EXPECT_TRUE(reference.stats.Accounted());

  for (size_t shards : {1u, 2u, 4u}) {
    OnlineConfig config = base;
    config.num_shards = shards;
    const OnlineResult result = RunOnline(stream, pattern, &filter, config);
    EXPECT_EQ(result.marked_ids, reference.marked_ids)
        << "shards=" << shards;
    EXPECT_EQ(result.marked_events, reference.marked_events);
    ExpectSameMatches(result.matches, reference.matches);
    EXPECT_EQ(result.stats.windows_boosted, reference.stats.windows_boosted);
    EXPECT_EQ(result.stats.windows_shed, reference.stats.windows_shed);
    EXPECT_EQ(result.stats.overload_escalations,
              reference.stats.overload_escalations);
    EXPECT_EQ(result.stats.overload_level_at_exit,
              reference.stats.overload_level_at_exit);
    EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
  }
}

// ---------------------------------------------------------------------
// Degrade-to-exact determinism across shard counts.

/// Pass-through that reports invalid (untrustworthy) marks for a fixed
/// set of window begins — a deterministic health violation. Overrides
/// BOTH entry points: the batch path keys on range.begin, the online
/// path on the stream_begin the runtime dispatched (identical values,
/// since window geometry is global in every mode).
class PoisonWindowFilter : public StreamFilter {
 public:
  std::string name() const override { return "poison-window"; }

  static bool Poisoned(size_t begin) { return begin == 48 || begin == 640; }

  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    return MarkAt(range.begin, range.size());
  }

  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext*, double) const override {
    return MarkAt(stream_begin, window.size());
  }

 private:
  static std::vector<int> MarkAt(size_t begin, size_t count) {
    return std::vector<int>(count, Poisoned(begin) ? kInvalidMark : 1);
  }
};

TEST(ShardedDegrade, DegradeToExactIsShardCountInvariant) {
  // max_windows_in_flight = 1 serializes close → mark → merge, so the
  // degraded/probe trajectory (which depends on merge-vs-close order)
  // is a pure function of the window index in every mode. The poisoned
  // begins (windows 3 and 40 of the 16-step geometry) each force one
  // quarantine + degrade; probes recover well before the next poison.
  const EventStream stream = SmallStream(2000, 55);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PoisonWindowFilter filter;

  OnlineConfig base;
  base.queue_capacity = 64;
  base.mark_size = 32;
  base.step_size = 16;
  base.max_windows_in_flight = 1;
  base.overload.enabled = false;
  base.health.enabled = true;
  base.health.probe_period = 4;
  base.health.probe_passes = 2;

  OnlineConfig legacy = base;
  legacy.num_threads = 2;
  const OnlineResult reference = RunOnline(stream, pattern, &filter, legacy);

  EXPECT_EQ(reference.stats.windows_quarantined, 2u);
  EXPECT_EQ(reference.stats.health_degrades, 2u);
  EXPECT_EQ(reference.stats.health_recoveries, 2u);
  EXPECT_GT(reference.stats.windows_degraded, 0u);
  EXPECT_GT(reference.stats.probes_run, 0u);
  EXPECT_TRUE(reference.stats.Accounted());

  for (size_t shards : {1u, 2u, 4u}) {
    OnlineConfig config = base;
    config.num_shards = shards;
    const OnlineResult result = RunOnline(stream, pattern, &filter, config);
    EXPECT_EQ(result.marked_ids, reference.marked_ids)
        << "shards=" << shards;
    EXPECT_EQ(result.marked_events, reference.marked_events);
    ExpectSameMatches(result.matches, reference.matches);
    EXPECT_EQ(result.stats.events_quarantined,
              reference.stats.events_quarantined);
    EXPECT_EQ(result.stats.windows_quarantined,
              reference.stats.windows_quarantined);
    EXPECT_EQ(result.stats.windows_degraded,
              reference.stats.windows_degraded);
    EXPECT_EQ(result.stats.health_violations,
              reference.stats.health_violations);
    EXPECT_EQ(result.stats.health_degrades, reference.stats.health_degrades);
    EXPECT_EQ(result.stats.health_recoveries,
              reference.stats.health_recoveries);
    EXPECT_EQ(result.stats.probes_run, reference.stats.probes_run);
    EXPECT_EQ(result.stats.probes_passed, reference.stats.probes_passed);
    EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
  }
}

// ---------------------------------------------------------------------
// Checkpoint/restore in sharded mode.

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove(CheckpointPath(dir).c_str());
  return dir;
}

TEST(ShardedCheckpoint, KillAndRestoreMatchesLegacyUninterruptedRun) {
  // Checkpoints are written quiescently (all shards drained), so the
  // snapshot carries no shard-count state: a sharded run killed
  // mid-stream restores into another sharded run and finishes
  // byte-identical to a legacy-pool run that was never interrupted.
  const EventStream stream = SmallStream(900, 77);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  const std::string dir = FreshDir("ck_sharded_restore");

  PassThroughFilter pass_a;
  OnlineConfig config_a;
  config_a.num_threads = 2;
  config_a.overload.enabled = false;
  OnlineDlacep online_a(pattern, &pass_a, config_a);
  ReplaySource source_a(&stream);
  const OnlineResult a = online_a.Run(&source_a);

  // Run B: sharded, permanent source failure mid-stream ("kill"), with
  // a final checkpoint written at abort.
  FaultPlan plan;
  plan.source_fail = true;
  plan.fail_at = 500;
  plan.fail_count = 0;
  FaultInjector injector(plan);
  auto source_b = injector.WrapSource(std::make_unique<ReplaySource>(&stream));
  PassThroughFilter pass_b;
  OnlineConfig config_b;
  config_b.num_shards = 2;
  config_b.overload.enabled = false;
  config_b.checkpoint.dir = dir;
  config_b.checkpoint.every_events = 128;
  OnlineDlacep online_b(pattern, &pass_b, config_b);
  OnlineResult b;
  ASSERT_TRUE(online_b.Run(source_b.get(), &b).ok());
  EXPECT_TRUE(b.stats.source_aborted);
  EXPECT_TRUE(b.stats.Accounted());

  // Run C: sharded (different shard count), restored from B's
  // checkpoint over a fresh source.
  PassThroughFilter pass_c;
  OnlineConfig config_c;
  config_c.num_shards = 4;
  config_c.overload.enabled = false;
  config_c.checkpoint.dir = dir;
  config_c.checkpoint.restore = true;
  OnlineDlacep online_c(pattern, &pass_c, config_c);
  ReplaySource source_c(&stream);
  OnlineResult c;
  ASSERT_TRUE(online_c.Run(&source_c, &c).ok());

  EXPECT_TRUE(c.stats.Accounted());
  EXPECT_EQ(c.stats.events_ingested, stream.size());
  EXPECT_EQ(c.marked_ids, a.marked_ids);
  EXPECT_EQ(c.marked_events, a.marked_events);
  ExpectSameMatches(c.matches, a.matches);
}

}  // namespace
}  // namespace dlacep
