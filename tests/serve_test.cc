// Unit tests for the multi-query serving subsystem (src/serve):
// QueryRegistry RCU snapshots, shared-CEP planning (structural twins,
// type occupancy, SEQ 2-prefix witness guards), and the ServeFilter's
// per-query attribution + multi-head decoding equivalence.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dlacep/extractor.h"
#include "dlacep/multi_pattern.h"
#include "dlacep/oracle_filter.h"
#include "pattern/builder.h"
#include "serve/breaker.h"
#include "serve/filter.h"
#include "serve/plan.h"
#include "serve/registry.h"
#include "test_util.h"

namespace dlacep {
namespace {

using serve::BuildSharedCepPlan;
using serve::PlanQuery;
using serve::QueryOptions;
using serve::QueryRegistry;
using serve::SeqPrefixWitness;
using serve::ServeFilter;
using serve::SharedCepPlan;
using serve::StructuralKey;
using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

/// SEQ over the named types with ascending-vol conditions between
/// consecutive positions, under arbitrary variable names.
Pattern NamedSeq(std::shared_ptr<const Schema> schema,
                 const std::vector<std::string>& types,
                 const std::string& var_prefix, size_t window,
                 bool conditions = true) {
  PatternBuilder builder(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 0; i < types.size(); ++i) {
    children.push_back(
        builder.Prim(types[i], var_prefix + std::to_string(i)));
  }
  auto root = builder.SeqOf(std::move(children));
  if (conditions) {
    for (size_t i = 0; i + 1 < types.size(); ++i) {
      builder.WhereCmp(1.0, var_prefix + std::to_string(i), "vol",
                       CmpOp::kLt, 1.0, var_prefix + std::to_string(i + 1));
    }
  }
  return builder.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

// ---------------------------------------------------------------------
// QueryRegistry.

TEST(QueryRegistry, RegisterPublishesImmutableSnapshots) {
  const EventStream stream = SmallStream(50, 1);
  QueryRegistry registry;

  const auto empty = registry.Acquire();
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(empty->queries.size(), 0u);

  auto a = registry.Register(AscendingSeqPattern(stream.schema_ptr(), 2, 8));
  ASSERT_TRUE(a.ok());
  QueryOptions named;
  named.name = "mine";
  auto b = registry.Register(AscendingSeqPattern(stream.schema_ptr(), 3, 12),
                             named);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(registry.size(), 2u);

  const auto both = registry.Acquire();
  ASSERT_EQ(both->queries.size(), 2u);
  EXPECT_GT(both->version, empty->version);
  EXPECT_EQ(both->queries[0].name, "q" + std::to_string(a.value()));
  EXPECT_EQ(both->queries[1].name, "mine");
  EXPECT_EQ(both->max_window, 12u);

  // RCU: a held snapshot never changes under later mutations.
  ASSERT_TRUE(registry.Unregister(a.value()).ok());
  EXPECT_EQ(both->queries.size(), 2u);
  EXPECT_EQ(registry.Acquire()->queries.size(), 1u);
  EXPECT_EQ(registry.Acquire()->max_window, 12u);
  // The empty snapshot acquired first is still the empty one.
  EXPECT_EQ(empty->queries.size(), 0u);
}

TEST(QueryRegistry, RejectsTimeWindowsAndUnknownUnregister) {
  const EventStream stream = SmallStream(50, 2);
  QueryRegistry registry;

  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"), builder.Prim("B", "b"));
  Pattern timed =
      builder.BuildOrDie(std::move(root), WindowSpec::Time(5.0));
  EXPECT_FALSE(registry.Register(timed).ok());
  EXPECT_EQ(registry.size(), 0u);

  EXPECT_FALSE(registry.Unregister(99).ok());
}

// ---------------------------------------------------------------------
// Shared-CEP planning.

TEST(SharedCepPlan, StructuralKeyIgnoresVariableNamesOnly) {
  const EventStream stream = SmallStream(50, 3);
  auto schema = stream.schema_ptr();
  const Pattern p1 = NamedSeq(schema, {"A", "B", "C"}, "x", 10);
  const Pattern p2 = NamedSeq(schema, {"A", "B", "C"}, "other", 10);
  const Pattern narrower = NamedSeq(schema, {"A", "B", "C"}, "x", 8);
  const Pattern retyped = NamedSeq(schema, {"A", "B", "D"}, "x", 10);
  const Pattern bare =
      NamedSeq(schema, {"A", "B", "C"}, "x", 10, /*conditions=*/false);

  EXPECT_EQ(StructuralKey(p1, EngineKind::kNfa),
            StructuralKey(p2, EngineKind::kNfa));
  EXPECT_NE(StructuralKey(p1, EngineKind::kNfa),
            StructuralKey(p1, EngineKind::kTree));
  EXPECT_NE(StructuralKey(p1, EngineKind::kNfa),
            StructuralKey(narrower, EngineKind::kNfa));
  EXPECT_NE(StructuralKey(p1, EngineKind::kNfa),
            StructuralKey(retyped, EngineKind::kNfa));
  EXPECT_NE(StructuralKey(p1, EngineKind::kNfa),
            StructuralKey(bare, EngineKind::kNfa));
}

TEST(SharedCepPlan, GroupsTwinsAndBucketsSharedPrefixes) {
  const EventStream stream = SmallStream(50, 4);
  auto schema = stream.schema_ptr();
  // q0 and q1 are structural twins; q2 shares their A,B prefix with a
  // different tail; q3 is a 2-position SEQ (its own prefix: no guard).
  std::vector<Pattern> patterns;
  patterns.push_back(NamedSeq(schema, {"A", "B", "C"}, "x", 10));
  patterns.push_back(NamedSeq(schema, {"A", "B", "C"}, "y", 10));
  patterns.push_back(NamedSeq(schema, {"A", "B", "D"}, "z", 14));
  patterns.push_back(NamedSeq(schema, {"A", "B"}, "w", 10));

  std::vector<PlanQuery> queries;
  for (const Pattern& pattern : patterns) {
    queries.push_back({&pattern, EngineKind::kNfa});
  }
  const SharedCepPlan plan = BuildSharedCepPlan(queries);

  ASSERT_EQ(plan.groups.size(), 3u);
  EXPECT_EQ(plan.structural_duplicates, 1u);
  EXPECT_EQ(plan.groups[0].members, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(plan.groups[1].members, (std::vector<size_t>{2}));
  EXPECT_EQ(plan.groups[2].members, (std::vector<size_t>{3}));

  // Occupancy: each 3-position group requires its three singleton type
  // sets.
  ASSERT_EQ(plan.groups[0].required_types.size(), 3u);
  ASSERT_EQ(plan.groups[1].required_types.size(), 3u);

  // One guard shared by the two 3-position groups (same A,B prefix and
  // ascending-vol condition), sized by the widest sharer (14). The
  // 2-position group gets none.
  ASSERT_EQ(plan.guards.size(), 1u);
  EXPECT_EQ(plan.groups[0].guard, 0);
  EXPECT_EQ(plan.groups[1].guard, 0);
  EXPECT_EQ(plan.groups[2].guard, -1);
  EXPECT_EQ(plan.guards[0].window().count_size(), 14u);
  EXPECT_EQ(plan.guards[0].root().children.size(), 2u);
}

TEST(SharedCepPlan, DisjAndNegContributeNoRequiredTypes) {
  const EventStream stream = SmallStream(50, 5);

  // NEG positions cannot demand presence: only A and B are required.
  PatternBuilder with_neg(stream.schema_ptr());
  auto neg_root = with_neg.Seq(with_neg.Prim("A", "a"),
                               with_neg.Neg(with_neg.Prim("D", "d")),
                               with_neg.Prim("B", "b"));
  const Pattern neg_pattern =
      with_neg.BuildOrDie(std::move(neg_root), WindowSpec::Count(10));
  const PlanQuery neg_query{&neg_pattern, EngineKind::kNfa};
  const SharedCepPlan neg_plan = BuildSharedCepPlan({&neg_query, 1});
  ASSERT_EQ(neg_plan.groups.size(), 1u);
  ASSERT_EQ(neg_plan.groups[0].required_types.size(), 2u);

  // A DISJ root only demands one of its branches — no occupancy sets.
  PatternBuilder with_disj(stream.schema_ptr());
  auto disj_root = with_disj.Disj(
      with_disj.Seq(with_disj.Prim("A", "a"), with_disj.Prim("B", "b")),
      with_disj.Seq(with_disj.Prim("C", "c"), with_disj.Prim("D", "d")));
  const Pattern disj_pattern =
      with_disj.BuildOrDie(std::move(disj_root), WindowSpec::Count(10));
  const PlanQuery disj_query{&disj_pattern, EngineKind::kNfa};
  const SharedCepPlan disj_plan = BuildSharedCepPlan({&disj_query, 1});
  ASSERT_EQ(disj_plan.groups.size(), 1u);
  EXPECT_TRUE(disj_plan.groups[0].required_types.empty());
}

TEST(SeqPrefixWitness, FindsPairsAndRespectsWindowSpan) {
  const EventStream base = SmallStream(4, 6);
  auto schema = base.schema_ptr();
  const Pattern guard = NamedSeq(schema, {"A", "B"}, "g", 4);

  // Stream: A(vol 1) at id 0, B(vol 2) at id 5 — types match and the
  // condition holds, but the pair spans 5 > window-1 = 3.
  EventStream far(schema);
  far.Append(0, 0.0, {1.0});
  for (int i = 0; i < 4; ++i) far.AppendBlank(static_cast<double>(i + 1));
  far.Append(1, 5.0, {2.0});
  std::vector<const Event*> far_events = {&far[0], &far[5]};
  EXPECT_FALSE(SeqPrefixWitness(guard, far_events));

  // Same pair within the window: witness found.
  EventStream near(schema);
  near.Append(0, 0.0, {1.0});
  near.Append(1, 1.0, {2.0});
  std::vector<const Event*> near_events = {&near[0], &near[1]};
  EXPECT_TRUE(SeqPrefixWitness(guard, near_events));

  // Condition violated (descending vol): no witness.
  EventStream desc(schema);
  desc.Append(0, 0.0, {2.0});
  desc.Append(1, 1.0, {1.0});
  std::vector<const Event*> desc_events = {&desc[0], &desc[1]};
  EXPECT_FALSE(SeqPrefixWitness(guard, desc_events));

  // Order matters: B before A is not a SEQ prefix.
  EventStream swapped(schema);
  swapped.Append(1, 0.0, {1.0});
  swapped.Append(0, 1.0, {2.0});
  std::vector<const Event*> swapped_events = {&swapped[0], &swapped[1]};
  EXPECT_FALSE(SeqPrefixWitness(guard, swapped_events));
}

TEST(SeqPrefixWitness, NeverPrunesAnEventSetWithFullMatches) {
  // Soundness against the engine: whenever the full 3-position query
  // has a match over an event set, the 2-prefix witness must exist.
  for (const uint64_t seed : {11u, 12u, 13u, 14u}) {
    const EventStream stream = SmallStream(300, seed);
    const Pattern query =
        AscendingSeqPattern(stream.schema_ptr(), 3, 10);
    const PlanQuery plan_query{&query, EngineKind::kNfa};
    const SharedCepPlan plan = BuildSharedCepPlan({&plan_query, 1});
    ASSERT_EQ(plan.guards.size(), 1u);

    std::vector<const Event*> events;
    for (size_t i = 0; i < stream.size(); ++i) events.push_back(&stream[i]);

    CepExtractor extractor(query);
    MatchSet matches;
    ASSERT_TRUE(extractor.Extract(events, &matches).ok());
    const bool witness = SeqPrefixWitness(plan.guards[0], events);
    if (!matches.empty()) {
      EXPECT_TRUE(witness) << "seed=" << seed << " pruned "
                           << matches.size() << " matches";
    }
  }
}

// ---------------------------------------------------------------------
// ServeFilter.

TEST(ServeFilter, BaseFilterMarksAreRecordedForEveryLiveQuery) {
  const EventStream stream = SmallStream(24, 7);
  QueryRegistry registry;
  auto a = registry.Register(AscendingSeqPattern(stream.schema_ptr(), 2, 8));
  auto b = registry.Register(AscendingSeqPattern(stream.schema_ptr(), 3, 8));
  ASSERT_TRUE(a.ok() && b.ok());

  PassThroughFilter pass;
  ServeFilter filter(&registry, &pass);
  const std::vector<int> marks =
      filter.Mark(stream, WindowRange{0, stream.size()});
  EXPECT_EQ(marks, std::vector<int>(stream.size(), 1));

  const auto recorded = filter.RecordedMarks();
  ASSERT_EQ(recorded.size(), 2u);
  std::vector<EventId> all_ids;
  for (size_t i = 0; i < stream.size(); ++i) all_ids.push_back(stream[i].id);
  EXPECT_EQ(recorded.at(a.value()), all_ids);
  EXPECT_EQ(recorded.at(b.value()), all_ids);

  filter.ResetRecording();
  EXPECT_TRUE(filter.RecordedMarks().empty());
}

TEST(ServeFilter, EmptyRegistryMarksNothing) {
  const EventStream stream = SmallStream(16, 8);
  QueryRegistry registry;
  PassThroughFilter pass;
  ServeFilter filter(&registry, &pass);
  const std::vector<int> marks =
      filter.Mark(stream, WindowRange{0, stream.size()});
  EXPECT_EQ(marks, std::vector<int>(stream.size(), 0));
  EXPECT_TRUE(filter.RecordedMarks().empty());
}

// ---------------------------------------------------------------------
// Multi-head decoding: one trunk forward, per-query thresholds.

struct TrainedTrunk {
  std::unique_ptr<MultiPatternDlacep> system;
  EventStream test;

  TrainedTrunk() : test(SmallStream(200, 22)) {
    const EventStream train = SmallStream(1200, 21);
    std::vector<Pattern> patterns;
    patterns.push_back(AscendingSeqPattern(train.schema_ptr(), 2, 8));
    patterns.push_back(AscendingSeqPattern(train.schema_ptr(), 3, 8));
    DlacepConfig config;
    config.network.hidden_dim = 8;
    config.network.num_layers = 1;
    config.train.max_epochs = 4;
    config.event_threshold = 0.3;
    system = std::make_unique<MultiPatternDlacep>(patterns, train, config);
  }

  EventStream Window(size_t begin, size_t count) const {
    EventStream window(test.schema_ptr());
    for (size_t i = 0; i < count; ++i) {
      window.AppendArrival(test[begin + i]);
    }
    return window;
  }
};

TEST(MultiHeadDecoding, MatchesPerThresholdMarkOnlineBitForBit) {
  const TrainedTrunk trunk;
  const EventNetworkFilter* heads = trunk.system->filter();
  const double base = heads->event_threshold();
  const std::vector<double> thresholds = {base, base - 0.15, base + 0.15};

  const EventStream window = trunk.Window(0, 16);
  InferenceContext ctx;
  std::vector<std::vector<int>> per_query;
  heads->MarkOnlineMultiHead(window, &ctx, thresholds, &per_query);
  ASSERT_EQ(per_query.size(), thresholds.size());

  for (size_t q = 0; q < thresholds.size(); ++q) {
    InferenceContext single_ctx;
    const std::vector<int> expected = heads->MarkOnline(
        window, 0, &single_ctx, thresholds[q] - base);
    EXPECT_EQ(per_query[q], expected) << "threshold " << thresholds[q];
  }
  // A lower threshold can only mark more, never fewer.
  for (size_t t = 0; t < window.size(); ++t) {
    EXPECT_GE(per_query[1][t], per_query[0][t]);
    EXPECT_LE(per_query[2][t], per_query[0][t]);
  }
}

TEST(MultiHeadDecoding, BatchedSlabMatchesPerWindowDecodes) {
  const TrainedTrunk trunk;
  const EventNetworkFilter* heads = trunk.system->filter();
  const double base = heads->event_threshold();
  const std::vector<double> thresholds = {base, base - 0.1};

  std::vector<EventStream> windows;
  windows.push_back(trunk.Window(0, 16));
  windows.push_back(trunk.Window(8, 16));
  windows.push_back(trunk.Window(16, 12));  // ragged tail
  std::vector<OnlineWindow> batch;
  for (size_t w = 0; w < windows.size(); ++w) {
    OnlineWindow entry;
    entry.events = &windows[w];
    entry.stream_begin = 8 * w;
    entry.threshold_boost = w == 1 ? 0.05 : 0.0;  // mixed overload level
    batch.push_back(entry);
  }

  InferenceContext batch_ctx;
  std::vector<std::vector<std::vector<int>>> batched;
  heads->MarkBatchOnlineMultiHead(batch, &batch_ctx, thresholds, &batched);
  ASSERT_EQ(batched.size(), batch.size());

  for (size_t w = 0; w < batch.size(); ++w) {
    InferenceContext ctx;
    std::vector<double> boosted = thresholds;
    for (double& t : boosted) t += batch[w].threshold_boost;
    std::vector<std::vector<int>> expected;
    heads->MarkOnlineMultiHead(windows[w], &ctx, boosted, &expected);
    EXPECT_EQ(batched[w], expected) << "window " << w;
  }
}

TEST(MultiHeadServeFilter, UnionsPerQueryMarksAndRecordsAttribution) {
  const TrainedTrunk trunk;
  const EventNetworkFilter* heads = trunk.system->filter();
  const double base = heads->event_threshold();

  QueryRegistry registry;
  const std::vector<Pattern>& patterns = trunk.system->patterns();
  QueryOptions strict;
  strict.threshold = base + 0.2;
  auto a = registry.Register(patterns[0], strict);
  QueryOptions loose;
  loose.threshold = base - 0.2;
  auto b = registry.Register(patterns[1], loose);
  ASSERT_TRUE(a.ok() && b.ok());

  ServeFilter filter(&registry, heads, heads);
  const EventStream window = trunk.Window(0, 16);
  InferenceContext ctx;
  const std::vector<int> unioned = filter.MarkOnline(window, 0, &ctx, 0.0);

  InferenceContext ref_ctx;
  const std::vector<int> strict_marks =
      heads->MarkOnline(window, 0, &ref_ctx, 0.2);
  const std::vector<int> loose_marks =
      heads->MarkOnline(window, 0, &ref_ctx, -0.2);
  for (size_t t = 0; t < window.size(); ++t) {
    EXPECT_EQ(unioned[t], (strict_marks[t] | loose_marks[t])) << "at " << t;
  }

  const auto recorded = filter.RecordedMarks();
  std::vector<EventId> strict_ids;
  std::vector<EventId> loose_ids;
  for (size_t t = 0; t < window.size(); ++t) {
    if (strict_marks[t] == 1) strict_ids.push_back(window[t].id);
    if (loose_marks[t] == 1) loose_ids.push_back(window[t].id);
  }
  EXPECT_EQ(recorded.at(a.value()), strict_ids);
  EXPECT_EQ(recorded.at(b.value()), loose_ids);
}

// ---------------------------------------------------------------------
// Circuit-breaker state machine (see serve/breaker.h).

serve::BreakerConfig SmallBreaker() {
  serve::BreakerConfig config;
  config.trip_after = 2;
  config.probe_period = 3;
  config.probe_passes = 2;
  return config;
}

TEST(QueryBreaker, TripsOnlyOnConsecutiveAborts) {
  serve::QueryBreaker breaker(SmallBreaker());
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHealthy);
  EXPECT_TRUE(breaker.ShouldRun());

  breaker.OnBudgetAbort();
  breaker.OnRunOk();  // a clean run resets the streak
  breaker.OnBudgetAbort();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHealthy);
  EXPECT_EQ(breaker.trips(), 0u);

  breaker.OnBudgetAbort();  // second consecutive abort
  EXPECT_EQ(breaker.state(), serve::BreakerState::kTripped);
  EXPECT_FALSE(breaker.ShouldRun());
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_EQ(breaker.budget_aborts(), 3u);
}

TEST(QueryBreaker, ProbeAfterSkipsThenRecoverOrRetrip) {
  serve::QueryBreaker breaker(SmallBreaker());
  breaker.OnBudgetAbort();
  breaker.OnBudgetAbort();
  ASSERT_EQ(breaker.state(), serve::BreakerState::kTripped);

  // probe_period skips open the probe window.
  breaker.OnSkipped();
  breaker.OnSkipped();
  EXPECT_FALSE(breaker.ShouldRun());
  breaker.OnSkipped();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kProbing);
  EXPECT_TRUE(breaker.ShouldRun());

  // A probe that aborts re-trips immediately (no trip_after grace).
  breaker.OnBudgetAbort();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kTripped);
  EXPECT_EQ(breaker.trips(), 2u);

  // Probe again; this time probe_passes clean runs close the breaker.
  breaker.OnSkipped();
  breaker.OnSkipped();
  breaker.OnSkipped();
  ASSERT_EQ(breaker.state(), serve::BreakerState::kProbing);
  breaker.OnRunOk();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kProbing);
  breaker.OnRunOk();
  EXPECT_EQ(breaker.state(), serve::BreakerState::kHealthy);
  EXPECT_TRUE(breaker.ShouldRun());
}

TEST(QueryBreaker, StateNamesAreStable) {
  EXPECT_STREQ(serve::BreakerStateName(serve::BreakerState::kHealthy),
               "healthy");
  EXPECT_STREQ(serve::BreakerStateName(serve::BreakerState::kTripped),
               "tripped");
  EXPECT_STREQ(serve::BreakerStateName(serve::BreakerState::kProbing),
               "probing");
}

}  // namespace
}  // namespace dlacep
