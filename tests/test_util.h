// Shared helpers for unit and property tests.

#ifndef DLACEP_TESTS_TEST_UTIL_H_
#define DLACEP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pattern/builder.h"
#include "stream/generator.h"
#include "stream/stream.h"

namespace dlacep {
namespace testing_util {

/// A small synthetic stream over types A.. with one N(0,1) attribute.
inline EventStream SmallStream(size_t num_events, uint64_t seed,
                               size_t num_types = 5) {
  SyntheticConfig config;
  config.num_events = num_events;
  config.num_types = num_types;
  config.num_attrs = 1;
  config.seed = seed;
  return GenerateSynthetic(config);
}

/// SEQ(A v0, B v1, ...) of `len` positions with ascending-volume
/// conditions between consecutive positions (selectivity ~0.5 each).
inline Pattern AscendingSeqPattern(std::shared_ptr<const Schema> schema,
                                   size_t len, size_t window) {
  PatternBuilder builder(std::move(schema));
  auto var_name = [](size_t i) {
    std::string name = "v";
    name += std::to_string(i);
    return name;
  };
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 0; i < len; ++i) {
    const std::string type(1, static_cast<char>('A' + i));
    children.push_back(builder.Prim(type, var_name(i)));
  }
  auto root = builder.SeqOf(std::move(children));
  for (size_t i = 0; i + 1 < len; ++i) {
    builder.WhereCmp(1.0, var_name(i), "vol", CmpOp::kLt, 1.0,
                     var_name(i + 1));
  }
  return builder.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

}  // namespace testing_util
}  // namespace dlacep

#endif  // DLACEP_TESTS_TEST_UTIL_H_
