// Shedding-baseline filter properties: RandomSheddingFilter marks are a
// pure function of (seed, range.begin) — independent of call order,
// instance, and detachment — and TypeSheddingFilter loses zero matches
// relative to exact CEP on the stock workload (it only drops events no
// pattern position can accept).

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "cep/engine.h"
#include "dlacep/pipeline.h"
#include "dlacep/shedding_filter.h"
#include "pattern/builder.h"
#include "stream/stocksim.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

// ---------------------------------------------------------------------
// RandomSheddingFilter purity.

TEST(RandomSheddingFilter, MarksDependOnlyOnSeedAndWindowBegin) {
  const EventStream stream = SmallStream(400, 5);
  const RandomSheddingFilter filter(0.5, 1234);

  std::vector<WindowRange> windows;
  for (size_t begin = 0; begin + 20 <= stream.size(); begin += 10) {
    windows.push_back(WindowRange{begin, begin + 20});
  }

  // Reference pass, in order.
  std::vector<std::vector<int>> reference;
  for (const WindowRange& w : windows) {
    reference.push_back(filter.Mark(stream, w));
  }

  // Same instance, shuffled evaluation order.
  std::vector<size_t> order(windows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::mt19937 shuffle_rng(99);
  std::shuffle(order.begin(), order.end(), shuffle_rng);
  for (size_t i : order) {
    EXPECT_EQ(filter.Mark(stream, windows[i]), reference[i]);
  }

  // A fresh instance with the same seed agrees; a different seed (with
  // 400 Bernoulli(0.5) draws) virtually surely does not.
  const RandomSheddingFilter same(0.5, 1234);
  const RandomSheddingFilter other(0.5, 4321);
  bool any_diff = false;
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(same.Mark(stream, windows[i]), reference[i]);
    any_diff |= other.Mark(stream, windows[i]) != reference[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomSheddingFilter, ConcurrentCallsMatchSequential) {
  const EventStream stream = SmallStream(600, 7);
  const RandomSheddingFilter filter(0.3, 77);

  std::vector<WindowRange> windows;
  for (size_t begin = 0; begin + 30 <= stream.size(); begin += 15) {
    windows.push_back(WindowRange{begin, begin + 30});
  }
  std::vector<std::vector<int>> reference(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    reference[i] = filter.Mark(stream, windows[i]);
  }

  std::vector<std::vector<int>> concurrent(windows.size());
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t; i < windows.size(); i += 4) {
        concurrent[i] = filter.Mark(stream, windows[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(concurrent, reference);
}

TEST(RandomSheddingFilter, DetachedWindowKeepsGlobalSalt) {
  const EventStream stream = SmallStream(200, 9);
  const RandomSheddingFilter filter(0.5, 31);
  const WindowRange range{40, 70};

  // MarkOnline over a 0-based detached copy must equal the batch Mark
  // over the same global positions — the contract the online runtime's
  // byte-equality rests on.
  const EventStream window = stream.Slice(range.begin, range.size());
  EXPECT_EQ(filter.MarkOnline(window, range.begin, nullptr, 0.0),
            filter.Mark(stream, range));
  EXPECT_EQ(filter.MarkCount(range.size(), range.begin),
            filter.Mark(stream, range));

  // Different stream positions draw different salts.
  EXPECT_NE(filter.MarkCount(30, 40), filter.MarkCount(30, 41));
}

TEST(RandomSheddingFilter, OnlineSaltKeysOnHeadArrivalIdNotCallerPosition) {
  // Regression for the sharded runtime: MarkOnline must salt by the
  // window's OWN head arrival id, never by the stream_begin the caller
  // happens to pass — shed decisions may not depend on dispatch order
  // or shard count, only on window content.
  const EventStream stream = SmallStream(200, 9);
  const RandomSheddingFilter filter(0.5, 31);
  const WindowRange range{40, 70};
  const EventStream window = stream.Slice(range.begin, range.size());

  const std::vector<int> expected = filter.MarkCount(range.size(), 40);
  ASSERT_EQ(window[0].id, 40u);  // the salt the window itself carries
  for (size_t caller_begin : {0u, 40u, 41u, 1000u}) {
    EXPECT_EQ(filter.MarkOnline(window, caller_begin, nullptr, 0.0),
              expected)
        << "caller stream_begin " << caller_begin
        << " leaked into the shed salt";
  }

  // Windows with different head ids draw different salts (content,
  // not caller, differentiates them)...
  const EventStream other = stream.Slice(41, range.size());
  EXPECT_NE(filter.MarkOnline(other, 40, nullptr, 0.0), expected);
  // ...and an empty window falls back to the caller's position.
  const EventStream empty = stream.Slice(0, 0);
  EXPECT_EQ(filter.MarkOnline(empty, 17, nullptr, 0.0),
            filter.MarkCount(0, 17));
}

// ---------------------------------------------------------------------
// TypeSheddingFilter recall.

TEST(TypeSheddingFilter, LosesZeroMatchesOnStockStream) {
  StockSimConfig sim;
  sim.num_events = 2500;
  sim.num_symbols = 16;
  sim.seed = 21;
  const EventStream stream = GenerateStockStream(sim);

  // SEQ over the three most prevalent symbols with a volume band — the
  // Table 1 shape. Types S3..S15 are pattern-irrelevant traffic the
  // filter may shed.
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("S0", "a"), builder.Prim("S1", "b"),
                          builder.Prim("S2", "c"));
  builder.WhereCmp(0.5, "a", "vol", CmpOp::kLt, 1.0, "c");
  Pattern pattern = builder.BuildOrDie(std::move(root),
                                       WindowSpec::Count(20));

  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  MatchSet exact;
  const Status status = engine.value()->Evaluate(
      std::span<const Event>(stream.events().data(), stream.size()),
      &exact);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_GT(exact.size(), 0u) << "vacuous recall test";

  DlacepConfig config;
  DlacepPipeline pipeline(
      pattern, std::make_unique<TypeSheddingFilter>(pattern), config);
  const PipelineResult result = pipeline.Evaluate(stream);

  // Zero lost matches (full recall) AND no spurious ones: type shedding
  // only removes events no primitive position accepts, and the
  // extractor's id-anchored count window rejects anything the original
  // window would have.
  const MatchSetMetrics quality = CompareMatchSets(exact, result.matches);
  EXPECT_EQ(quality.recall, 1.0);
  EXPECT_EQ(quality.precision, 1.0);
  // And it actually shed something, or the test is trivial.
  EXPECT_LT(result.marked_events, stream.size());
}

}  // namespace
}  // namespace dlacep
