// Unit tests for matches, match sets, set metrics, the Φ complexity
// model, and selectivity estimation.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "cep/match.h"
#include "dlacep/acep.h"
#include "pattern/builder.h"
#include "pattern/selectivity.h"
#include "stream/generator.h"

namespace dlacep {
namespace {

TEST(Match, NormalizesSortsAndDeduplicates) {
  const Match m({5, 1, 3, 1});
  EXPECT_EQ(m.ids, (std::vector<EventId>{1, 3, 5}));
  EXPECT_EQ(m.IdSpan(), 4u);
  EXPECT_EQ(m.ToString(), "{1,3,5}");
}

TEST(MatchSet, InsertDeduplicatesAndMergeUnions) {
  MatchSet set;
  EXPECT_TRUE(set.Insert(Match({1, 2})));
  EXPECT_FALSE(set.Insert(Match({2, 1})));  // same set of ids
  EXPECT_EQ(set.size(), 1u);

  MatchSet other;
  other.Insert(Match({1, 2}));
  other.Insert(Match({3, 4}));
  set.Merge(other);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.IntersectionSize(other), 2u);
}

TEST(MatchSetMetricsTest, ComputesRecallPrecisionF1Jaccard) {
  MatchSet exact;
  exact.Insert(Match({1}));
  exact.Insert(Match({2}));
  exact.Insert(Match({3}));
  exact.Insert(Match({4}));
  MatchSet approx;
  approx.Insert(Match({1}));
  approx.Insert(Match({2}));
  approx.Insert(Match({9}));  // false positive

  const MatchSetMetrics m = CompareMatchSets(exact, approx);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_NEAR(m.f1, 2 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.jaccard, 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(m.false_negative_pct, 50.0);
}

TEST(MatchSetMetricsTest, EmptySetsScorePerfect) {
  const MatchSetMetrics m = CompareMatchSets(MatchSet{}, MatchSet{});
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.jaccard, 1.0);
}

TEST(PhiModel, GrowsWithWindowRatesAndSelectivity) {
  const std::vector<double> rates = {0.1, 0.1, 0.1};
  std::vector<std::vector<double>> sel(3, std::vector<double>(3, 1.0));
  const double base = PhiExpectedPartialMatches(10, rates, sel);
  EXPECT_GT(PhiExpectedPartialMatches(20, rates, sel), base);

  std::vector<std::vector<double>> tighter = sel;
  tighter[0][1] = tighter[1][0] = 0.1;
  EXPECT_LT(PhiExpectedPartialMatches(10, rates, tighter), base);

  const std::vector<double> faster = {0.2, 0.2, 0.2};
  EXPECT_GT(PhiExpectedPartialMatches(10, faster, sel), base);
}

TEST(PhiModel, PredictsNfaPartialMatchOrderOfMagnitude) {
  // Φ is an expectation per window; the NFA's partial-match counter over
  // a stream of N events is roughly N/W windows' worth of fresh partial
  // matches. We only assert an order-of-magnitude agreement.
  SyntheticConfig config;
  config.num_events = 2000;
  config.seed = 2;
  const EventStream stream = GenerateSynthetic(config);

  PatternBuilder b(stream.schema_ptr());
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"),
                    b.Prim("C", "c"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(30));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const std::span<const Event> span(stream.events().data(), stream.size());
  const double phi = EstimateEcepCost(plans.value()[0], span, 30, 7);
  EXPECT_GT(phi, 0.0);

  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  ASSERT_TRUE(engine.ok());
  MatchSet out;
  ASSERT_TRUE(engine.value()->Evaluate(span, &out).ok());
  const double measured_per_window =
      static_cast<double>(engine.value()->stats().partial_matches) /
      (static_cast<double>(stream.size()) / 30.0);
  EXPECT_GT(measured_per_window, phi / 50.0);
  EXPECT_LT(measured_per_window, phi * 50.0);
}

TEST(Selectivity, EstimatesRatesFromTypeFrequencies) {
  SyntheticConfig config;
  config.num_events = 3000;
  config.num_types = 5;  // each type's rate ≈ 0.2
  config.seed = 3;
  const EventStream stream = GenerateSynthetic(config);

  PatternBuilder b(stream.schema_ptr());
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const PlanStatistics stats = EstimatePlanStatistics(
      plans.value()[0],
      std::span<const Event>(stream.events().data(), stream.size()), 7);
  EXPECT_NEAR(stats.rates[0], 0.2, 0.05);
  EXPECT_NEAR(stats.rates[1], 0.2, 0.05);
  // No conditions between them: selectivity defaults to 1.
  EXPECT_DOUBLE_EQ(stats.pair_sel[0][1], 1.0);
}

TEST(Selectivity, EstimatesPairwisePredicateSelectivity) {
  SyntheticConfig config;
  config.num_events = 3000;
  config.num_types = 5;
  config.seed = 4;
  const EventStream stream = GenerateSynthetic(config);

  PatternBuilder b(stream.schema_ptr());
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");  // ~0.5 selective
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(10));
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const PlanStatistics stats = EstimatePlanStatistics(
      plans.value()[0],
      std::span<const Event>(stream.events().data(), stream.size()), 7,
      4000);
  EXPECT_NEAR(stats.pair_sel[0][1], 0.5, 0.05);
  EXPECT_DOUBLE_EQ(stats.pair_sel[0][1], stats.pair_sel[1][0]);
}

TEST(AcepObjectiveTest, WeightsTradeOffQualityAndSpeed) {
  MatchSet exact;
  exact.Insert(Match({1, 2}));
  exact.Insert(Match({3, 4}));
  MatchSet half;
  half.Insert(Match({1, 2}));

  // Pure-quality weighting prefers the better match set regardless of
  // throughput; pure-throughput weighting prefers the faster system.
  const double quality_half = AcepObjective(exact, half, 100.0, 1.0, 0.0);
  const double quality_full = AcepObjective(exact, exact, 1.0, 1.0, 0.0);
  EXPECT_LT(quality_full, quality_half);

  const double speed_half = AcepObjective(exact, half, 100.0, 0.0, 1.0);
  const double speed_full = AcepObjective(exact, exact, 1.0, 0.0, 1.0);
  EXPECT_LT(speed_half, speed_full);
}

}  // namespace
}  // namespace dlacep
