// Engine-choice invariance: the match set is a property of the query
// and the stream, never of the engine that computed it.
//
//  * STATIC CENSUS — all 15 Table 1/2 bench templates × 3 stock seeds:
//    every engine that accepts the pattern (tree and lazy reject
//    non-SEQ/CONJ/DISJ shapes at Create) produces the identical match
//    set to the NFA, and the adaptive engine accepts everything.
//
//  * ONLINE ACROSS SHARDS — the adaptive runtime run is byte-identical
//    (marks AND matches) to the static-NFA run at shard counts 0/1/2/4:
//    selection is fed from the router's deterministic window-close
//    order, so the shard count can never change the selection trail.
//
//  * BUDGET-ABORT PARITY — with a partial-match budget, the adaptive
//    engine's abort is exactly the selected engine's static abort:
//    same status code, same (empty, all-or-nothing) output.
//
//  * CHECKPOINT MID-SWITCH — an adaptive run killed after a checkpoint
//    taken while engine A was still selected restores, performs the
//    switch at the same point, and finishes byte-identical to the
//    uninterrupted adaptive run and to every static engine.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cep/adaptive_engine.h"
#include "cep/engine.h"
#include "dlacep/oracle_filter.h"
#include "pattern/builder.h"
#include "runtime/checkpoint.h"
#include "runtime/fault_injection.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "stream/generator.h"
#include "workloads/queries_a.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"

namespace dlacep {
namespace {

using namespace workloads;

void ExpectSameMatches(const MatchSet& got, const MatchSet& want,
                       const std::string& label) {
  EXPECT_EQ(got.size(), want.size()) << label;
  EXPECT_EQ(got.IntersectionSize(want), want.size()) << label;
}

/// The 15-template Table 1/2 census the serving tests pin (kept in sync
/// with tests/multi_query_runtime_test.cc).
std::vector<Pattern> CensusPatterns(std::shared_ptr<const Schema> s) {
  const size_t w = 12;
  std::vector<Pattern> patterns;
  patterns.push_back(QA1(s, 4, 7, 0.9, 1.1, 3, w));
  patterns.push_back(QA2(s, 4, w));
  patterns.push_back(QA3(s, 5, 10, 3, 2, 1, 4, 0.9, 1.1, 1.5, w));
  patterns.push_back(QA4(s, 4, 10, 3, 1, 3, 0.9, 1.1, 0.8, 1.25, w));
  patterns.push_back(QA5(s, 2, 10, 2, 0.8, 1.25, w, 2));
  patterns.push_back(QA6(s, 3, 10, 0.8, 1.25, w, 2));
  patterns.push_back(QA7(s, 2, 10, 2, 0.8, 1.25, w));
  patterns.push_back(QA8(s, 2, 10, 2, 0.8, 1.25, w));
  patterns.push_back(QA9(s, 3, 10, 20, 0.9, 1.1, 0.85, 1.2, w));
  patterns.push_back(QA10(s, 3, 8, 0.85, 1.2, w));
  patterns.push_back(QA11(s, false, 8, 0.8, 1.25, w));
  patterns.push_back(QA11(s, true, 8, 0.8, 1.25, w));
  patterns.push_back(QA12(s, 8, 0.8, 1.25, 0.7, 1.4, w));
  patterns.push_back(QA1(s, 6, 6, 0.85, 1.15, 2, 16));
  patterns.push_back(QA1(s, 5, 5, 0.85, 1.15, 2, 16));
  return patterns;
}

constexpr uint64_t kSeeds[] = {3003, 4004, 5005};

MatchSet EvaluateWith(CepEngine* engine, const EventStream& stream,
                      Status* status) {
  MatchSet out;
  *status = engine->Evaluate(
      std::span<const Event>(stream.events().data(), stream.size()), &out);
  return out;
}

// ---------------------------------------------------------------------
// Static census: every supported engine agrees on every template.

TEST(EngineChoiceInvariance, AllTemplatesAllSeedsAllEngines) {
  for (const uint64_t seed : kSeeds) {
    const EventStream stream = GenerateStockStream(StockConfig(700, seed));
    const std::vector<Pattern> patterns = CensusPatterns(stream.schema_ptr());
    ASSERT_EQ(patterns.size(), 15u);
    size_t nonempty = 0;
    for (size_t t = 0; t < patterns.size(); ++t) {
      const std::string where =
          "template " + std::to_string(t) + " seed " + std::to_string(seed);
      auto nfa = CreateEngine(EngineKind::kNfa, patterns[t]);
      ASSERT_TRUE(nfa.ok()) << where;
      Status status;
      const MatchSet reference =
          EvaluateWith(nfa.value().get(), stream, &status);
      ASSERT_TRUE(status.ok()) << where << ": " << status.ToString();
      nonempty += !reference.empty();

      for (const EngineKind kind :
           {EngineKind::kTree, EngineKind::kLazy, EngineKind::kAdaptive}) {
        auto engine = CreateEngine(kind, patterns[t]);
        if (!engine.ok()) {
          // Only the specialized engines may decline a pattern shape;
          // the adaptive engine accepts everything the NFA accepts.
          EXPECT_NE(kind, EngineKind::kAdaptive)
              << where << ": " << engine.status().ToString();
          continue;
        }
        const MatchSet got = EvaluateWith(engine.value().get(), stream,
                                          &status);
        ASSERT_TRUE(status.ok()) << where << ": " << status.ToString();
        ExpectSameMatches(got, reference,
                          where + " engine " + engine.value()->name());
      }
    }
    // A quiet census would make the invariance vacuous.
    EXPECT_GE(nonempty, 5u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Online across shards: adaptive == static NFA, byte for byte.

TEST(EngineChoiceInvariance, AdaptiveOnlineByteIdenticalAcrossShards) {
  for (const uint64_t seed : kSeeds) {
    const EventStream stream = GenerateStockStream(StockConfig(700, seed));
    const std::vector<Pattern> patterns = CensusPatterns(stream.schema_ptr());
    for (size_t t = 0; t < patterns.size(); ++t) {
      PassThroughFilter pass;
      OnlineConfig reference_config;
      reference_config.overload.enabled = false;
      OnlineDlacep reference_run(patterns[t], &pass, reference_config);
      ReplaySource reference_source(&stream);
      const OnlineResult reference = reference_run.Run(&reference_source);

      for (const size_t shards : {0u, 1u, 2u, 4u}) {
        const std::string where = "template " + std::to_string(t) +
                                  " seed " + std::to_string(seed) +
                                  " shards " + std::to_string(shards);
        OnlineConfig config;
        config.overload.enabled = false;
        config.num_shards = shards;
        config.engine = EngineKind::kAdaptive;
        // A short reselect cadence so runs long enough to reselect do.
        config.engine_options.adaptive_reselect_windows = 4;
        OnlineDlacep online(patterns[t], &pass, config);
        ReplaySource source(&stream);
        const OnlineResult result = online.Run(&source);
        EXPECT_EQ(result.marked_ids, reference.marked_ids) << where;
        ExpectSameMatches(result.matches, reference.matches, where);
        EXPECT_FALSE(result.stats.engine_selected.empty()) << where;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Budget aborts: adaptive aborts exactly like its selected engine.

TEST(EngineChoiceInvariance, BudgetAbortMatchesSelectedEngine) {
  const EventStream stream = GenerateStockStream(StockConfig(700, 3003));
  // SEQ over the three hottest symbols inside a wide window: the
  // canonical partial-match blowup, guaranteed to hit a small budget.
  PatternBuilder b(stream.schema_ptr());
  std::vector<PatternBuilder::Node> children;
  children.push_back(b.PrimAnyOfIds(TopK(3), "x1"));
  children.push_back(b.PrimAnyOfIds(TopK(3), "x2"));
  children.push_back(b.PrimAnyOfIds(TopK(3), "x3"));
  const Pattern pattern = b.BuildOrDie(b.SeqOf(std::move(children)),
                                       WindowSpec::Count(60));

  EngineOptions options;
  options.partial_match_budget = 64;
  auto adaptive = CreateEngine(EngineKind::kAdaptive, pattern, options);
  ASSERT_TRUE(adaptive.ok());
  Status adaptive_status;
  const MatchSet adaptive_out =
      EvaluateWith(adaptive.value().get(), stream, &adaptive_status);
  EXPECT_EQ(adaptive_status.code(), StatusCode::kBudgetExceeded)
      << adaptive_status.ToString();
  EXPECT_TRUE(adaptive_out.empty()) << "aborts are all-or-nothing";
  EXPECT_EQ(adaptive.value()->stats().budget_aborts, 1u);

  const EngineKind selected =
      static_cast<AdaptiveEngine*>(adaptive.value().get())->selected_kind();
  auto fixed = CreateEngine(selected, pattern, options);
  ASSERT_TRUE(fixed.ok());
  Status fixed_status;
  const MatchSet fixed_out =
      EvaluateWith(fixed.value().get(), stream, &fixed_status);
  EXPECT_EQ(fixed_status.code(), adaptive_status.code());
  EXPECT_TRUE(fixed_out.empty());
  EXPECT_EQ(fixed.value()->stats().budget_aborts, 1u);
}

// ---------------------------------------------------------------------
// Checkpoint/restore across an engine switch.

/// Two-phase drifting stream over types {A, B, C}: phase 1 keeps the
/// chain order already frequency-ascending (A rare), so the cost model
/// holds the NFA; phase 2 floods A and starves C, which makes the
/// frequency-ordered lazy chain analytically cheaper and forces a
/// switch.
EventStream DriftingStream(std::shared_ptr<const Schema> schema) {
  EventStream stream(std::move(schema));
  const TypeId kA = 0, kB = 1, kC = 2;
  const TypeId phase1[10] = {kB, kC, kC, kB, kC, kB, kC, kC, kB, kA};
  const TypeId phase2[10] = {kA, kA, kA, kA, kA, kA, kA, kB, kB, kC};
  double t = 0.0;
  for (size_t i = 0; i < 600; ++i) {
    stream.Append(phase1[i % 10], t, {1.0 + 0.01 * static_cast<double>(i)});
    t += 1.0;
  }
  for (size_t i = 0; i < 600; ++i) {
    stream.Append(phase2[i % 10], t, {1.0 + 0.01 * static_cast<double>(i)});
    t += 1.0;
  }
  return stream;
}

Pattern DriftPattern(std::shared_ptr<const Schema> schema) {
  PatternBuilder b(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  children.push_back(b.Prim("A", "a"));
  children.push_back(b.Prim("B", "b"));
  children.push_back(b.Prim("C", "c"));
  return b.BuildOrDie(b.SeqOf(std::move(children)), WindowSpec::Count(8));
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove(CheckpointPath(dir).c_str());
  return dir;
}

OnlineConfig AdaptiveDriftConfig() {
  OnlineConfig config;
  config.overload.enabled = false;
  config.engine = EngineKind::kAdaptive;
  config.engine_options.adaptive_reselect_windows = 4;
  return config;
}

TEST(EngineChoiceInvariance, CheckpointAcrossSwitchRestoresByteIdentical) {
  const EventStream stream = DriftingStream(MakeSyntheticSchema(3, 1));
  const Pattern pattern = DriftPattern(stream.schema_ptr());
  const std::string dir = FreshDir("ck_adaptive_switch");

  // Run A: uninterrupted adaptive run — the byte-identity reference.
  // The drift must actually provoke a switch, NFA -> lazy.
  PassThroughFilter pass_a;
  OnlineDlacep online_a(pattern, &pass_a, AdaptiveDriftConfig());
  ReplaySource source_a(&stream);
  const OnlineResult a = online_a.Run(&source_a);
  ASSERT_GE(a.stats.engine_switches, 1u)
      << "drift failed to provoke a switch; the test would be vacuous";
  EXPECT_EQ(a.stats.engine_selected, "lazy");
  EXPECT_FALSE(a.matches.empty());

  // Run B: killed at event 450 — still in phase 1, so the abort-time
  // checkpoint is taken while the NFA is the selected engine.
  FaultPlan plan;
  plan.source_fail = true;
  plan.fail_at = 450;
  plan.fail_count = 0;
  FaultInjector injector(plan);
  auto source_b = injector.WrapSource(std::make_unique<ReplaySource>(&stream));
  PassThroughFilter pass_b;
  OnlineConfig config_b = AdaptiveDriftConfig();
  config_b.checkpoint.dir = dir;
  config_b.checkpoint.every_events = 128;
  OnlineDlacep online_b(pattern, &pass_b, config_b);
  OnlineResult b;
  ASSERT_TRUE(online_b.Run(source_b.get(), &b).ok());
  EXPECT_TRUE(b.stats.source_aborted);
  EXPECT_EQ(b.stats.engine_selected, "nfa")
      << "kill point drifted past the switch; move fail_at earlier";
  EXPECT_EQ(b.stats.engine_switches, 0u);

  // Run C: restored from B's checkpoint, replays the drift, switches at
  // the same point, and finishes byte-identical to A.
  PassThroughFilter pass_c;
  OnlineConfig config_c = AdaptiveDriftConfig();
  config_c.checkpoint.dir = dir;
  config_c.checkpoint.restore = true;
  OnlineDlacep online_c(pattern, &pass_c, config_c);
  ReplaySource source_c(&stream);
  OnlineResult c;
  ASSERT_TRUE(online_c.Run(&source_c, &c).ok());
  EXPECT_EQ(c.marked_ids, a.marked_ids);
  EXPECT_EQ(c.marked_events, a.marked_events);
  ExpectSameMatches(c.matches, a.matches, "restored vs uninterrupted");
  EXPECT_EQ(c.stats.engine_selected, a.stats.engine_selected);
  EXPECT_EQ(c.stats.engine_switches, a.stats.engine_switches);

  // And to every static engine: the switch changed nothing observable.
  for (const EngineKind kind :
       {EngineKind::kNfa, EngineKind::kTree, EngineKind::kLazy}) {
    PassThroughFilter pass_s;
    OnlineConfig config_s;
    config_s.overload.enabled = false;
    config_s.engine = kind;
    OnlineDlacep fixed(pattern, &pass_s, config_s);
    ReplaySource source_s(&stream);
    const OnlineResult s = fixed.Run(&source_s);
    EXPECT_EQ(s.marked_ids, a.marked_ids) << EngineKindName(kind);
    ExpectSameMatches(s.matches, a.matches, EngineKindName(kind));
  }

  // A static-engine runtime must refuse the adaptive checkpoint rather
  // than resume with a different selection policy.
  PassThroughFilter pass_d;
  OnlineConfig config_d;
  config_d.overload.enabled = false;
  config_d.checkpoint.dir = dir;
  config_d.checkpoint.restore = true;
  OnlineDlacep online_d(pattern, &pass_d, config_d);
  ReplaySource source_d(&stream);
  OnlineResult d;
  EXPECT_FALSE(online_d.Run(&source_d, &d).ok());
}

}  // namespace
}  // namespace dlacep
