// Unit tests for the fixed-size thread pool behind parallel filtration.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"

namespace dlacep {
namespace {

TEST(ResolveNumThreads, ZeroMeansHardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ResolveNumThreads(0), 1u);
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
}

TEST(ThreadPool, RunsEverySubmittedTaskBeforeWaitReturns) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
  pool.Wait();  // no pending work — must not block
}

TEST(ThreadPool, ParallelForTouchesEachIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<int> slots(257, 0);
  ParallelFor(&pool, slots.size(), [&](size_t i) { slots[i] += 1; });
  EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0), 257);
  for (int v : slots) EXPECT_EQ(v, 1);
}

TEST(ThreadPool, ParallelForWithNullPoolRunsSequentiallyInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForZeroCountIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DestructorJoinsWithQueuedWorkStillPending) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): destruction must drain the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace dlacep
