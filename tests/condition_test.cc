// Unit tests for conditions: terms, comparison semantics, composition,
// Kleene-list evaluation rules (aligned vs universal), and CanEval.

#include <gtest/gtest.h>

#include "pattern/condition.h"

namespace dlacep {
namespace {

Event MakeEvent(EventId id, TypeId type, double vol) {
  return Event(id, type, static_cast<double>(id), {vol});
}

TEST(Term, ValueComputesAffineTransform) {
  const Event e = MakeEvent(0, 0, 10.0);
  EXPECT_DOUBLE_EQ(Term::Attr(0, 0).ValueFor(e), 10.0);
  EXPECT_DOUBLE_EQ(Term::Attr(0, 0, 0.5).ValueFor(e), 5.0);
  EXPECT_DOUBLE_EQ(Term::Attr(0, 0, 2.0, 1.0).ValueFor(e), 21.0);
}

TEST(CompareCondition, ScalarComparisons) {
  const Event a = MakeEvent(0, 0, 1.0);
  const Event b = MakeEvent(1, 1, 2.0);
  Binding binding(2);
  binding.Bind(0, &a);
  binding.Bind(1, &b);

  const struct {
    CmpOp op;
    bool expected;
  } cases[] = {
      {CmpOp::kLt, true},  {CmpOp::kLe, true},  {CmpOp::kGt, false},
      {CmpOp::kGe, false}, {CmpOp::kEq, false}, {CmpOp::kNe, true},
  };
  for (const auto& c : cases) {
    CompareCondition cond(Term::Attr(0, 0), c.op, Term::Attr(1, 0));
    EXPECT_EQ(cond.Eval(binding), c.expected) << CmpOpName(c.op);
  }
}

TEST(CompareCondition, ConstantSides) {
  const Event a = MakeEvent(0, 0, 3.0);
  Binding binding(1);
  binding.Bind(0, &a);
  EXPECT_TRUE(CompareCondition(Term::Const(2.5), CmpOp::kLt,
                               Term::Attr(0, 0))
                  .Eval(binding));
  EXPECT_FALSE(CompareCondition(Term::Attr(0, 0), CmpOp::kLt,
                                Term::Const(2.5))
                   .Eval(binding));
  EXPECT_TRUE(CompareCondition(Term::Const(1.0), CmpOp::kLt,
                               Term::Const(2.0))
                  .Eval(Binding(0)));
}

TEST(CompareCondition, UniversalOverKleeneList) {
  const Event k1 = MakeEvent(0, 0, 1.0);
  const Event k2 = MakeEvent(1, 0, 5.0);
  const Event x = MakeEvent(2, 1, 3.0);
  Binding binding(2);
  binding.Bind(0, &k1);
  binding.Bind(0, &k2);  // var 0 is a list of two
  binding.Bind(1, &x);

  // var0 < var1 must hold for EVERY element: 5.0 < 3.0 fails.
  EXPECT_FALSE(CompareCondition(Term::Attr(0, 0), CmpOp::kLt,
                                Term::Attr(1, 0))
                   .Eval(binding));
  // var0 < 6 holds for every element.
  EXPECT_TRUE(CompareCondition(Term::Attr(0, 0), CmpOp::kLt,
                               Term::Const(6.0))
                  .Eval(binding));
}

TEST(CompareCondition, AlignedWhenBothListsSameLength) {
  const Event a1 = MakeEvent(0, 0, 1.0);
  const Event a2 = MakeEvent(1, 0, 10.0);
  const Event b1 = MakeEvent(2, 1, 2.0);
  const Event b2 = MakeEvent(3, 1, 20.0);
  Binding binding(2);
  binding.Bind(0, &a1);
  binding.Bind(0, &a2);
  binding.Bind(1, &b1);
  binding.Bind(1, &b2);

  // Aligned: 1<2 and 10<20 — true even though 10<2 would fail under
  // cross-product semantics.
  EXPECT_TRUE(CompareCondition(Term::Attr(0, 0), CmpOp::kLt,
                               Term::Attr(1, 0))
                  .Eval(binding));
}

TEST(CompareCondition, SameVarBothSides) {
  const Event a = MakeEvent(0, 0, 2.0);
  Binding binding(1);
  binding.Bind(0, &a);
  // 0.5 * v < v holds for positive values.
  EXPECT_TRUE(CompareCondition(Term::Attr(0, 0, 0.5), CmpOp::kLt,
                               Term::Attr(0, 0))
                  .Eval(binding));
}

TEST(Composites, AndOrNot) {
  const Event a = MakeEvent(0, 0, 1.0);
  Binding binding(1);
  binding.Bind(0, &a);

  auto lt2 = std::make_unique<CompareCondition>(Term::Attr(0, 0),
                                                CmpOp::kLt,
                                                Term::Const(2.0));
  auto gt5 = std::make_unique<CompareCondition>(Term::Attr(0, 0),
                                                CmpOp::kGt,
                                                Term::Const(5.0));
  std::vector<std::unique_ptr<Condition>> both;
  both.push_back(lt2->Clone());
  both.push_back(gt5->Clone());
  EXPECT_FALSE(AndCondition(std::move(both)).Eval(binding));

  std::vector<std::unique_ptr<Condition>> either;
  either.push_back(lt2->Clone());
  either.push_back(gt5->Clone());
  EXPECT_TRUE(OrCondition(std::move(either)).Eval(binding));

  EXPECT_FALSE(NotCondition(lt2->Clone()).Eval(binding));
}

TEST(Composites, VarsAreUnionedAndDeduplicated) {
  std::vector<std::unique_ptr<Condition>> parts;
  parts.push_back(std::make_unique<CompareCondition>(
      Term::Attr(2, 0), CmpOp::kLt, Term::Attr(0, 0)));
  parts.push_back(std::make_unique<CompareCondition>(
      Term::Attr(0, 0), CmpOp::kLt, Term::Attr(1, 0)));
  AndCondition cond(std::move(parts));
  EXPECT_EQ(cond.Vars(), (std::vector<VarId>{0, 1, 2}));
}

TEST(Condition, CanEvalRequiresAllVarsBound) {
  CompareCondition cond(Term::Attr(0, 0), CmpOp::kLt, Term::Attr(1, 0));
  const Event a = MakeEvent(0, 0, 1.0);
  Binding binding(2);
  EXPECT_FALSE(cond.CanEval(binding));
  binding.Bind(0, &a);
  EXPECT_FALSE(cond.CanEval(binding));
  binding.Bind(1, &a);
  EXPECT_TRUE(cond.CanEval(binding));
}

TEST(BandCondition, FactoryBuildsTwoSidedBand) {
  const Event x = MakeEvent(0, 0, 10.0);
  const Event y = MakeEvent(1, 1, 9.5);
  Binding binding(2);
  binding.Bind(0, &x);
  binding.Bind(1, &y);
  // 0.9 * x < y < 1.1 * x: y within the band of x.
  auto band = MakeBandCondition(/*x=*/1, 0, /*y=*/0, 0, 0.9, 1.1);
  EXPECT_TRUE(band->Eval(binding));
  // Tight band excludes it.
  auto tight = MakeBandCondition(1, 0, 0, 0, 0.99, 1.01);
  EXPECT_FALSE(tight->Eval(binding));
}

TEST(LambdaCondition, WrapsArbitraryPredicate) {
  const Event a = MakeEvent(0, 0, 4.0);
  Binding binding(1);
  binding.Bind(0, &a);
  LambdaCondition cond(
      {0},
      [](const Binding& b) { return b.Single(0).attr(0) > 3.0; },
      "vol > 3");
  EXPECT_TRUE(cond.Eval(binding));
  EXPECT_EQ(cond.ToString(nullptr), "vol > 3");
  EXPECT_TRUE(cond.Clone()->Eval(binding));
}

TEST(Binding, AllEventsSortsAndDeduplicates) {
  const Event a = MakeEvent(5, 0, 1.0);
  const Event b = MakeEvent(2, 1, 2.0);
  Binding binding(3);
  binding.Bind(0, &a);
  binding.Bind(1, &b);
  binding.Bind(2, &a);  // same event twice
  const auto events = binding.AllEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->id, 2u);
  EXPECT_EQ(events[1]->id, 5u);
}

}  // namespace
}  // namespace dlacep
