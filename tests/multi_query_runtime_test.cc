// Integration tests for the multi-query serving runtime: per-query
// match sets must be byte-identical to isolated single-query
// OnlineDlacep runs — for every registered query, at every shard count,
// for the full 15-template Table 1/2 census, and with register/
// unregister churn racing live traffic (this file runs under TSan in
// CI, so the churn tests double as the data-race check).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dlacep/multi_pattern.h"
#include "dlacep/oracle_filter.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "serve/server.h"
#include "test_util.h"
#include "workloads/queries_a.h"
#include "workloads/queries_b.h"
#include "workloads/recipes.h"

namespace dlacep {
namespace {

using serve::MultiQueryResult;
using serve::MultiQueryServer;
using serve::QueryOptions;
using serve::QueryRegistry;
using serve::ServeConfig;
using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

void ExpectSameMatches(const MatchSet& a, const MatchSet& b,
                       const std::string& label) {
  EXPECT_EQ(a.size(), b.size()) << label;
  EXPECT_EQ(a.IntersectionSize(b), a.size()) << label;
}

/// Lossless below-capacity config with the serve geometry made
/// explicit, so isolated runs line up window for window.
OnlineConfig LosslessConfig(size_t max_window, size_t shards) {
  OnlineConfig config;
  config.queue_capacity = 256;
  config.mark_size = 2 * max_window;
  config.step_size = max_window;
  config.num_shards = shards;
  config.overload.enabled = false;
  return config;
}

size_t MaxCountWindow(const std::vector<Pattern>& patterns) {
  size_t w = 0;
  for (const Pattern& pattern : patterns) {
    w = std::max(w, pattern.window().count_size());
  }
  return w;
}

/// Serves every pattern from one registry and checks each query's
/// matches against its isolated single-query reference at the given
/// shard count.
void CheckServeMatchesIsolated(const EventStream& stream,
                               const std::vector<Pattern>& patterns,
                               const StreamFilter* base,
                               const EventNetworkFilter* heads,
                               const std::vector<MatchSet>& reference,
                               size_t shards) {
  QueryRegistry registry;
  for (size_t q = 0; q < patterns.size(); ++q) {
    QueryOptions options;
    options.name = "q" + std::to_string(q);
    ASSERT_TRUE(registry.Register(patterns[q], options).ok());
  }

  ServeConfig config;
  config.online = LosslessConfig(MaxCountWindow(patterns), shards);
  MultiQueryServer server(&registry, base, heads, config);
  ReplaySource source(&stream);
  MultiQueryResult result;
  ASSERT_TRUE(server.Run(&source, &result).ok());
  EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();

  ASSERT_EQ(result.queries.size(), patterns.size());
  for (size_t q = 0; q < patterns.size(); ++q) {
    ExpectSameMatches(result.queries[q].matches, reference[q],
                      "shards=" + std::to_string(shards) + " query=" +
                          result.queries[q].name);
  }
}

std::vector<MatchSet> IsolatedReferences(
    const EventStream& stream, const std::vector<Pattern>& patterns,
    const StreamFilter* filter) {
  std::vector<MatchSet> reference;
  const OnlineConfig config = LosslessConfig(MaxCountWindow(patterns), 0);
  for (const Pattern& pattern : patterns) {
    OnlineDlacep online(pattern, filter, config);
    ReplaySource source(&stream);
    reference.push_back(online.Run(&source).matches);
  }
  return reference;
}

// ---------------------------------------------------------------------
// Byte-identity across shard counts.

TEST(MultiQueryServing, TwinsAndDistinctQueriesMatchIsolatedAcrossShards) {
  const EventStream stream = SmallStream(2500, 41);
  auto schema = stream.schema_ptr();
  std::vector<Pattern> patterns;
  patterns.push_back(AscendingSeqPattern(schema, 2, 8));
  patterns.push_back(AscendingSeqPattern(schema, 2, 8));  // twin of q0
  patterns.push_back(AscendingSeqPattern(schema, 3, 12));

  PassThroughFilter pass;
  const std::vector<MatchSet> reference =
      IsolatedReferences(stream, patterns, &pass);
  EXPECT_FALSE(reference[0].empty());

  for (const size_t shards : {0u, 1u, 2u, 4u}) {
    CheckServeMatchesIsolated(stream, patterns, &pass, nullptr, reference,
                              shards);
  }
}

TEST(MultiQueryServing, SharingStatsCountTwinsGuardsAndPrunes) {
  const EventStream stream = SmallStream(1200, 42);
  auto schema = stream.schema_ptr();
  std::vector<Pattern> patterns;
  patterns.push_back(AscendingSeqPattern(schema, 3, 10));
  patterns.push_back(AscendingSeqPattern(schema, 3, 10));  // twin

  QueryRegistry registry;
  for (const Pattern& pattern : patterns) {
    ASSERT_TRUE(registry.Register(pattern).ok());
  }
  PassThroughFilter pass;
  ServeConfig config;
  config.online = LosslessConfig(MaxCountWindow(patterns), 0);
  MultiQueryServer server(&registry, &pass, nullptr, config);
  ReplaySource source(&stream);
  MultiQueryResult result;
  ASSERT_TRUE(server.Run(&source, &result).ok());

  // Twins over identical event sets: one engine run serves both, and
  // the 3-position SEQ group carries a witness guard that was checked.
  EXPECT_EQ(result.sharing.partitions, 1u);
  EXPECT_EQ(result.sharing.engines_run, 1u);
  EXPECT_EQ(result.sharing.engines_shared, 1u);
  EXPECT_EQ(result.sharing.guard_checks, 1u);
  EXPECT_FALSE(result.queries[0].shared);
  EXPECT_TRUE(result.queries[1].shared);
  ExpectSameMatches(result.queries[0].matches, result.queries[1].matches,
                    "twin fan-out");
}

TEST(MultiQueryServing, TrainedTrunkServesHeadsIdenticalToIsolatedRuns) {
  const EventStream train = SmallStream(1500, 43);
  const EventStream stream = SmallStream(600, 44);
  auto schema = train.schema_ptr();
  std::vector<Pattern> patterns;
  patterns.push_back(AscendingSeqPattern(schema, 2, 8));
  patterns.push_back(AscendingSeqPattern(schema, 3, 8));

  DlacepConfig config;
  config.network.hidden_dim = 8;
  config.network.num_layers = 1;
  config.train.max_epochs = 4;
  config.event_threshold = 0.2;  // permissive: keep the test non-empty
  MultiPatternDlacep system(patterns, train, config);

  const std::vector<MatchSet> reference =
      IsolatedReferences(stream, patterns, system.filter());
  for (const size_t shards : {0u, 2u}) {
    CheckServeMatchesIsolated(stream, patterns, system.filter(),
                              system.filter(), reference, shards);
  }
}

// ---------------------------------------------------------------------
// The full Table 1/2 census: every template byte-identical at every
// shard count.

std::vector<Pattern> CensusPatterns(std::shared_ptr<const Schema> s) {
  using namespace workloads;
  const size_t w = 12;
  std::vector<Pattern> patterns;
  patterns.push_back(QA1(s, 4, 7, 0.9, 1.1, 3, w));
  patterns.push_back(QA2(s, 4, w));
  patterns.push_back(QA3(s, 5, 10, 3, 2, 1, 4, 0.9, 1.1, 1.5, w));
  patterns.push_back(QA4(s, 4, 10, 3, 1, 3, 0.9, 1.1, 0.8, 1.25, w));
  patterns.push_back(QA5(s, 2, 10, 2, 0.8, 1.25, w, 2));
  patterns.push_back(QA6(s, 3, 10, 0.8, 1.25, w, 2));
  patterns.push_back(QA7(s, 2, 10, 2, 0.8, 1.25, w));
  patterns.push_back(QA8(s, 2, 10, 2, 0.8, 1.25, w));
  patterns.push_back(QA9(s, 3, 10, 20, 0.9, 1.1, 0.85, 1.2, w));
  patterns.push_back(QA10(s, 3, 8, 0.85, 1.2, w));
  patterns.push_back(QA11(s, false, 8, 0.8, 1.25, w));
  patterns.push_back(QA11(s, true, 8, 0.8, 1.25, w));
  patterns.push_back(QA12(s, 8, 0.8, 1.25, 0.7, 1.4, w));
  // Table 2 templates transplanted onto the stock schema by rank range
  // (types 0..5 stand in for A..F).
  patterns.push_back(QA1(s, 6, 6, 0.85, 1.15, 2, 16));
  patterns.push_back(QA1(s, 5, 5, 0.85, 1.15, 2, 16));
  return patterns;
}

TEST(MultiQueryServing, AllFifteenTemplatesMatchIsolatedAcrossShards) {
  using namespace workloads;
  const EventStream stock = GenerateStockStream(StockConfig(700, 3003));
  std::vector<Pattern> patterns = CensusPatterns(stock.schema_ptr());
  ASSERT_EQ(patterns.size(), 15u);

  PassThroughFilter pass;
  const std::vector<MatchSet> reference =
      IsolatedReferences(stock, patterns, &pass);
  size_t nonempty = 0;
  for (const MatchSet& matches : reference) nonempty += !matches.empty();
  EXPECT_GE(nonempty, 5u) << "census stream too quiet to be meaningful";

  for (const size_t shards : {1u, 2u, 4u}) {
    CheckServeMatchesIsolated(stock, patterns, &pass, nullptr, reference,
                              shards);
  }
}

// ---------------------------------------------------------------------
// Per-query fault isolation: a budget blowup in one structural group
// never changes any other query's match set.

/// The most frequent non-blank event type — SEQ-ing several positions
/// of it inside one window is the canonical partial-match blowup.
TypeId HottestType(const EventStream& stream) {
  std::vector<size_t> counts(stream.schema_ptr()->num_types(), 0);
  for (const Event& event : stream.events()) {
    if (!event.is_blank()) ++counts[event.type];
  }
  return static_cast<TypeId>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

Pattern SameTypeBlowup(std::shared_ptr<const Schema> schema,
                       const std::string& type, size_t len, size_t window) {
  PatternBuilder builder(std::move(schema));
  std::vector<PatternBuilder::Node> children;
  for (size_t i = 0; i < len; ++i) {
    children.push_back(builder.Prim(type, "p" + std::to_string(i)));
  }
  return builder.BuildOrDie(builder.SeqOf(std::move(children)),
                            WindowSpec::Count(window));
}

TEST(MultiQueryServing, BudgetAbortIsolatesToTheOffendingStructuralGroup) {
  using namespace workloads;
  const EventStream stock = GenerateStockStream(StockConfig(700, 3003));
  auto s = stock.schema_ptr();
  std::vector<Pattern> patterns = CensusPatterns(s);
  const size_t census = patterns.size();
  // Window 100 over a 700-event stream: the blowup unit's chunk span
  // (8W) covers the whole stream, so its entire pm bill lands in one
  // chunk — guaranteed past any census-safe budget.
  patterns.push_back(
      SameTypeBlowup(s, s->TypeName(HottestType(stock)), 4, 100));

  PassThroughFilter pass;
  const std::vector<MatchSet> reference =
      IsolatedReferences(stock, patterns, &pass);
  EXPECT_FALSE(reference[census].empty());

  // Calibrate the budget from an unbudgeted serve: extract_cost is a
  // unit's whole-run pm work + chunk count, so any census chunk's pm is
  // strictly below census_max + 1 (no census abort possible), while the
  // blowup query's cost must dwarf it (so its chunks do abort).
  uint64_t census_max = 0;
  uint64_t blowup_cost = 0;
  {
    QueryRegistry registry;
    for (size_t q = 0; q < patterns.size(); ++q) {
      QueryOptions options;
      options.name = "q" + std::to_string(q);
      ASSERT_TRUE(registry.Register(patterns[q], options).ok());
    }
    ServeConfig config;
    config.online = LosslessConfig(MaxCountWindow(patterns), 0);
    MultiQueryServer server(&registry, &pass, nullptr, config);
    ReplaySource source(&stock);
    MultiQueryResult result;
    ASSERT_TRUE(server.Run(&source, &result).ok());
    for (size_t q = 0; q < census; ++q) {
      census_max = std::max(census_max, result.queries[q].extract_cost);
      EXPECT_FALSE(result.queries[q].degraded) << "q" << q;
    }
    blowup_cost = result.queries[census].extract_cost;
  }
  // cost = chunk_count + pm work; the blowup unit is a single chunk, so
  // its per-chunk pm is blowup_cost - 1 and must clear the budget.
  ASSERT_GT(blowup_cost, census_max + 2)
      << "blowup query not pathological enough to calibrate a budget";
  const uint64_t budget = census_max + 1;

  for (const size_t shards : {0u, 1u, 2u, 4u}) {
    QueryRegistry registry;
    for (size_t q = 0; q < patterns.size(); ++q) {
      QueryOptions options;
      options.name = "q" + std::to_string(q);
      ASSERT_TRUE(registry.Register(patterns[q], options).ok());
    }
    ServeConfig config;
    config.online = LosslessConfig(MaxCountWindow(patterns), shards);
    config.query_pm_budget = budget;
    config.breaker.trip_after = 1;
    MultiQueryServer server(&registry, &pass, nullptr, config);
    ReplaySource source(&stock);
    MultiQueryResult result;
    ASSERT_TRUE(server.Run(&source, &result).ok());
    EXPECT_TRUE(result.stats.Accounted());
    ASSERT_EQ(result.queries.size(), patterns.size());

    // Every census query: exact, undegraded, untouched by the blowup.
    for (size_t q = 0; q < census; ++q) {
      EXPECT_FALSE(result.queries[q].degraded)
          << "shards=" << shards << " q" << q;
      ExpectSameMatches(result.queries[q].matches, reference[q],
                        "budget shards=" + std::to_string(shards) +
                            " query=" + result.queries[q].name);
    }
    // The blowup query: aborted, tripped, degraded — and sound (its
    // surviving matches are a subset of the exact answer).
    const serve::QueryResult& blown = result.queries[census];
    EXPECT_TRUE(blown.degraded) << "shards=" << shards;
    EXPECT_GE(blown.budget_aborts, 1u) << "shards=" << shards;
    EXPECT_EQ(blown.breaker_state, serve::BreakerState::kTripped)
        << "shards=" << shards;
    EXPECT_GE(result.sharing.breaker_trips, 1u) << "shards=" << shards;
    EXPECT_EQ(blown.matches.IntersectionSize(reference[census]),
              blown.matches.size())
        << "shards=" << shards << ": degraded matches must be sound";

    if (shards != 0) continue;
    // Same server, second stream: the tripped breaker persists (the
    // blowup query starts suspended), the engines are reusable after
    // their aborts, and the census queries stay byte-identical.
    ReplaySource again(&stock);
    MultiQueryResult rerun;
    ASSERT_TRUE(server.Run(&again, &rerun).ok());
    for (size_t q = 0; q < census; ++q) {
      ExpectSameMatches(rerun.queries[q].matches, reference[q],
                        "rerun query=" + rerun.queries[q].name);
    }
    EXPECT_TRUE(rerun.queries[census].degraded);
  }
}

// ---------------------------------------------------------------------
// Quarantined windows relay to every query (per-query recall 1.0).

/// Wraps a trained trunk and pins its decode threshold to an absolute
/// value, so an isolated single-query run reproduces a registry
/// entry's QueryOptions::threshold.
class FixedThresholdFilter : public StreamFilter {
 public:
  FixedThresholdFilter(const EventNetworkFilter* inner, double threshold)
      : inner_(inner), offset_(threshold - inner->event_threshold()) {}

  std::string name() const override { return "fixed-threshold"; }

  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->Mark(stream, range);
  }

  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext* ctx,
                              double threshold_boost) const override {
    return inner_->MarkOnline(window, stream_begin, ctx,
                              threshold_boost + offset_);
  }

 private:
  const EventNetworkFilter* inner_;
  double offset_;
};

TEST(MultiQueryServing, QuarantinedWindowsRelayToEveryQuery) {
  const EventStream train = SmallStream(800, 47);
  const EventStream stream = SmallStream(1500, 48);
  auto schema = train.schema_ptr();
  std::vector<Pattern> patterns;
  patterns.push_back(AscendingSeqPattern(schema, 2, 8));
  patterns.push_back(AscendingSeqPattern(schema, 3, 12));

  DlacepConfig trunk_config;
  trunk_config.network.hidden_dim = 8;
  trunk_config.network.num_layers = 1;
  trunk_config.train.max_epochs = 2;
  MultiPatternDlacep system(patterns, train, trunk_config);

  // CRF marginals live in [0, 1]: threshold 0.0 marks every event and
  // 2.0 marks none, so per-query attribution maximally disagrees
  // regardless of training. The all-relay union trips the
  // anomaly-streak guard after a deterministic window count,
  // quarantining windows whose per-query marks were already recorded —
  // exactly the case where attribution must NOT capture an event for
  // the marking query alone.
  const std::vector<double> thresholds = {0.0, 2.0};

  auto make_config = [&](size_t shards) {
    OnlineConfig online = LosslessConfig(MaxCountWindow(patterns), shards);
    online.health.anomaly_streak = 3;
    online.health.probe_period = 2;
    online.health.probe_passes = 2;
    return online;
  };
  auto serve = [&](size_t shards, MultiQueryResult* result) {
    QueryRegistry registry;
    for (size_t q = 0; q < patterns.size(); ++q) {
      QueryOptions options;
      options.name = "q" + std::to_string(q);
      options.threshold = thresholds[q];
      ASSERT_TRUE(registry.Register(patterns[q], options).ok());
    }
    ServeConfig config;
    config.online = make_config(shards);
    MultiQueryServer server(&registry, system.filter(), system.filter(),
                            config);
    ReplaySource source(&stream);
    ASSERT_TRUE(server.Run(&source, result).ok());
    EXPECT_GT(result->stats.windows_quarantined, 0u) << "shards=" << shards;
    ASSERT_EQ(result->queries.size(), patterns.size());
  };

  // Single-threaded path: windows mark, close, and inspect in lockstep,
  // so the streak/quarantine/probe cadence is a pure function of the
  // window count. Each isolated reference with the matching pinned
  // threshold sees uniform windows throughout (all-relay for q0,
  // all-blank for q1) and therefore the same cadence — per-query
  // extraction inputs and match sets must be byte-identical.
  // (ExtractShared is shard-agnostic; under shards the per-window
  // health levels depend on how far dispatch ran ahead of the verdict,
  // so exact cadence equality is not a testable contract there.)
  std::vector<MatchSet> reference;
  std::vector<size_t> reference_inputs;
  for (size_t q = 0; q < patterns.size(); ++q) {
    FixedThresholdFilter fixed(system.filter(), thresholds[q]);
    OnlineConfig isolated = make_config(0);
    isolated.collect_relayed = true;
    OnlineDlacep alone(patterns[q], &fixed, isolated);
    ReplaySource source(&stream);
    const OnlineResult result = alone.Run(&source);
    EXPECT_GT(result.stats.windows_quarantined, 0u) << "q" << q;
    reference.push_back(result.matches);
    reference_inputs.push_back(result.relayed_events.size());
  }
  EXPECT_FALSE(reference[0].empty());
  EXPECT_GT(reference_inputs[1], 0u);

  MultiQueryResult result;
  serve(0, &result);
  for (size_t q = 0; q < patterns.size(); ++q) {
    // The extraction input must be the isolated run's full relayed set:
    // a quarantined window reaches every query whole, including events
    // some other query's head happened to mark.
    EXPECT_EQ(result.queries[q].marked_events, reference_inputs[q])
        << "q" << q;
    ExpectSameMatches(result.queries[q].matches, reference[q],
                      "quarantine query=" + result.queries[q].name);
  }

  // Sharded path: same ExtractShared code, timing-dependent health
  // cadence — assert the timing-independent recall-1.0 invariants. The
  // all-marking query relays everything no matter which windows
  // quarantined, so its matches equal exact CEP; and every query's
  // extraction input covers at least the quarantine-only events (the
  // ids that ONLY reached the store through a quarantined window).
  PassThroughFilter pass;
  OnlineConfig exact_config = LosslessConfig(MaxCountWindow(patterns), 0);
  std::vector<MatchSet> exact;
  for (const Pattern& pattern : patterns) {
    OnlineDlacep online(pattern, &pass, exact_config);
    ReplaySource source(&stream);
    exact.push_back(online.Run(&source).matches);
  }

  MultiQueryResult sharded;
  serve(2, &sharded);
  ExpectSameMatches(sharded.queries[0].matches, exact[0],
                    "sharded all-relay query");
  for (size_t q = 0; q < patterns.size(); ++q) {
    EXPECT_GE(sharded.queries[q].marked_events,
              sharded.stats.events_quarantined)
        << "q" << q;
    EXPECT_LE(sharded.queries[q].matches.size(), exact[q].size()) << "q" << q;
  }
}

// ---------------------------------------------------------------------
// Register/unregister churn under live traffic (TSan coverage).

TEST(MultiQueryServing, ChurnLeavesStableQueriesByteIdentical) {
  const EventStream stream = SmallStream(3000, 45);
  auto schema = stream.schema_ptr();
  std::vector<Pattern> patterns;
  patterns.push_back(AscendingSeqPattern(schema, 2, 8));
  patterns.push_back(AscendingSeqPattern(schema, 3, 12));

  PassThroughFilter pass;
  const std::vector<MatchSet> reference =
      IsolatedReferences(stream, patterns, &pass);

  for (const size_t shards : {0u, 2u, 4u}) {
    QueryRegistry registry;
    std::vector<serve::QueryId> stable_ids;
    for (size_t q = 0; q < patterns.size(); ++q) {
      QueryOptions options;
      options.name = "stable" + std::to_string(q);
      auto id = registry.Register(patterns[q], options);
      ASSERT_TRUE(id.ok());
      stable_ids.push_back(id.value());
    }

    ServeConfig config;
    config.online = LosslessConfig(MaxCountWindow(patterns), shards);
    MultiQueryServer server(&registry, &pass, nullptr, config);

    // Churn thread: register/unregister a structural twin of q0 as fast
    // as the registry allows, racing the worker/shard threads' Acquire.
    std::atomic<bool> stop{false};
    std::thread churn([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto id = registry.Register(patterns[0]);
        if (id.ok()) (void)registry.Unregister(id.value());
      }
    });

    ReplaySource source(&stream);
    MultiQueryResult result;
    const Status status = server.Run(&source, &result);
    stop.store(true);
    churn.join();
    ASSERT_TRUE(status.ok());
    EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();

    // The stable queries' matches must be exactly the isolated results
    // no matter how the churned twin's registrations interleaved.
    for (size_t q = 0; q < patterns.size(); ++q) {
      bool found = false;
      for (const serve::QueryResult& query : result.queries) {
        if (query.id != stable_ids[q]) continue;
        found = true;
        ExpectSameMatches(query.matches, reference[q],
                          "churn shards=" + std::to_string(shards) +
                              " query=" + query.name);
      }
      EXPECT_TRUE(found) << "stable query missing from results";
    }
  }
}

TEST(MultiQueryServing, EmptyRegistryFailsPrecondition) {
  const EventStream stream = SmallStream(100, 46);
  QueryRegistry registry;
  PassThroughFilter pass;
  ServeConfig config;
  MultiQueryServer server(&registry, &pass, nullptr, config);
  ReplaySource source(&stream);
  MultiQueryResult result;
  EXPECT_FALSE(server.Run(&source, &result).ok());
}

}  // namespace
}  // namespace dlacep
