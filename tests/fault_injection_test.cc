// Fault-injection harness tests: the runtime's robustness contract
// under every injected fault class —
//
//   * the serve loop never crashes: Run() completes with a clean Status
//     or a counted abort, never an uncontrolled exit;
//   * accounting always holds:
//       relayed + filtered + dropped + quarantined == ingested;
//   * degraded/quarantined windows relay unfiltered (recall 1.0);
//   * a killed-and-restored run is byte-identical to an uninterrupted
//     one (marks and matches);
//   * corrupt model files and checkpoints are rejected at load (CRC),
//     and a failed load leaves in-memory parameters untouched.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "nn/infer.h"
#include "nn/layers.h"
#include "nn/serialize.h"
#include "runtime/checkpoint.h"
#include "runtime/fault_injection.h"
#include "runtime/health.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  std::remove(CheckpointPath(dir).c_str());
  return dir;
}

void ExpectAccounted(const RuntimeStats& stats) {
  EXPECT_TRUE(stats.Accounted())
      << "relayed " << stats.events_relayed << " + filtered "
      << stats.events_filtered << " + dropped " << stats.events_dropped_queue
      << " + quarantined " << stats.events_quarantined << " != ingested "
      << stats.events_ingested;
}

// ---------------------------------------------------------------------
// --inject spec parsing.

TEST(FaultSpec, EmptySpecDisablesEverything) {
  auto plan = ParseFaultSpec("");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan.value().any());
}

TEST(FaultSpec, ParsesEveryTokenWithArguments) {
  auto plan = ParseFaultSpec(
      "nan_burst:2:5,model_corrupt,corrupt_source:0.25,wedge:3:0.75,"
      "source_fail:100:4");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().nan_burst);
  EXPECT_EQ(plan.value().nan_begin_pass, 2u);
  EXPECT_EQ(plan.value().nan_pass_count, 5u);
  EXPECT_TRUE(plan.value().model_corrupt);
  EXPECT_DOUBLE_EQ(plan.value().corrupt_probability, 0.25);
  EXPECT_TRUE(plan.value().wedge);
  EXPECT_EQ(plan.value().wedge_window, 3u);
  EXPECT_DOUBLE_EQ(plan.value().wedge_seconds, 0.75);
  EXPECT_TRUE(plan.value().source_fail);
  EXPECT_EQ(plan.value().fail_at, 100u);
  EXPECT_EQ(plan.value().fail_count, 4u);
}

TEST(FaultSpec, DefaultsApplyWhenArgumentsOmitted) {
  auto plan = ParseFaultSpec("nan_burst,wedge,source_fail,corrupt_source");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().nan_begin_pass, 4u);
  EXPECT_EQ(plan.value().nan_pass_count, 4u);
  EXPECT_EQ(plan.value().wedge_window, 8u);
  EXPECT_EQ(plan.value().fail_at, 256u);
  EXPECT_EQ(plan.value().fail_count, 3u);
  EXPECT_DOUBLE_EQ(plan.value().corrupt_probability, 0.05);
}

TEST(FaultSpec, RejectsUnknownAndMalformedTokens) {
  EXPECT_FALSE(ParseFaultSpec("nonsense").ok());
  EXPECT_FALSE(ParseFaultSpec("nan_burst:abc").ok());
  EXPECT_FALSE(ParseFaultSpec("corrupt_source:1.5").ok());
  EXPECT_FALSE(ParseFaultSpec("wedge:2:-1").ok());
  EXPECT_FALSE(ParseFaultSpec("pathological_query:4:1").ok());
}

TEST(FaultSpec, ParsesServeLayerTokens) {
  auto plan = ParseFaultSpec("pathological_query:9:32,churn_storm:128");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().any());
  EXPECT_TRUE(plan.value().pathological_query);
  EXPECT_EQ(plan.value().pathological_at, 9u);
  EXPECT_EQ(plan.value().pathological_window, 32u);
  EXPECT_TRUE(plan.value().churn_storm);
  EXPECT_EQ(plan.value().churn_cycles, 128u);

  auto defaults = ParseFaultSpec("pathological_query,churn_storm");
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().pathological_at, 6u);
  EXPECT_EQ(defaults.value().pathological_window, 40u);
  EXPECT_EQ(defaults.value().churn_cycles, 64u);
}

TEST(FaultSpec, PathologicalHookFiresOnceAtTriggerWindow) {
  auto plan = ParseFaultSpec("pathological_query:6");
  ASSERT_TRUE(plan.ok());
  FaultInjector injector(plan.value());
  int fired = 0;
  injector.SetPathologicalHook([&fired] { ++fired; });
  injector.OnWorkerWindow(5);
  EXPECT_EQ(fired, 0);
  // `>=` trigger: an out-of-order shard can mark a later window first.
  injector.OnWorkerWindow(7);
  EXPECT_EQ(fired, 1);
  injector.OnWorkerWindow(6);
  injector.OnWorkerWindow(8);
  EXPECT_EQ(fired, 1) << "the hook must fire exactly once";
}

// ---------------------------------------------------------------------
// HealthGuard state machine.

TEST(HealthGuard, FlagsSentinelAndCoverageAndRange) {
  HealthGuard guard(HealthConfig{});
  EXPECT_EQ(guard.Inspect({1, 0, 1}, 3, 0.0), HealthViolation::kNone);
  EXPECT_EQ(guard.Inspect({1, kInvalidMark, 1}, 3, 0.0),
            HealthViolation::kInvalidMarks);
  EXPECT_EQ(guard.Inspect({1, 0}, 3, 0.0), HealthViolation::kInvalidMarks);
  EXPECT_EQ(guard.Inspect({1, 7, 0}, 3, 0.0),
            HealthViolation::kInvalidMarks);
}

TEST(HealthGuard, DeadlineFiresOnlyWhenConfigured) {
  HealthConfig config;
  EXPECT_EQ(HealthGuard(config).Inspect({1}, 1, 100.0),
            HealthViolation::kNone);  // deadline off by default
  config.mark_deadline_seconds = 0.5;
  HealthGuard guard(config);
  EXPECT_EQ(guard.Inspect({1}, 1, 0.4), HealthViolation::kNone);
  EXPECT_EQ(guard.Inspect({1}, 1, 0.6), HealthViolation::kDeadline);
}

TEST(HealthGuard, AnomalyStreakNeedsConsecutiveUniformWindows) {
  HealthConfig config;
  config.anomaly_streak = 3;
  HealthGuard guard(config);
  EXPECT_EQ(guard.Inspect({1, 1}, 2, 0.0), HealthViolation::kNone);
  EXPECT_EQ(guard.Inspect({0, 0}, 2, 0.0), HealthViolation::kNone);
  EXPECT_EQ(guard.Inspect({1, 1}, 2, 0.0),
            HealthViolation::kAnomalyStreak);
  // The firing consumed the streak; a mixed window keeps it at zero.
  EXPECT_EQ(guard.Inspect({1, 0}, 2, 0.0), HealthViolation::kNone);
  EXPECT_EQ(guard.Inspect({1, 1}, 2, 0.0), HealthViolation::kNone);
}

TEST(HealthGuard, ProbeRecoveryNeedsConsecutivePasses) {
  HealthConfig config;
  config.probe_passes = 2;
  HealthGuard guard(config);
  bool recovered = true;
  EXPECT_TRUE(guard.ProbeHealthy({1, 0}, 2, 0.0, &recovered));
  EXPECT_FALSE(recovered);
  // A failed probe resets the run.
  EXPECT_FALSE(guard.ProbeHealthy({kInvalidMark, kInvalidMark}, 2, 0.0,
                                  &recovered));
  EXPECT_FALSE(recovered);
  EXPECT_TRUE(guard.ProbeHealthy({1, 0}, 2, 0.0, &recovered));
  EXPECT_FALSE(recovered);
  EXPECT_TRUE(guard.ProbeHealthy({0, 1}, 2, 0.0, &recovered));
  EXPECT_TRUE(recovered);
}

// ---------------------------------------------------------------------
// Online runtime under injected filter faults.

/// Emits the kInvalidMark sentinel for every window beginning before
/// `bad_before`, and relay-all afterwards — a filter that "recovers"
/// once the stream has moved past a bad region, letting probes succeed.
class FlakyFilter : public StreamFilter {
 public:
  explicit FlakyFilter(size_t bad_before) : bad_before_(bad_before) {}

  std::string name() const override { return "flaky"; }

  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    return std::vector<int>(range.size(), 1);
  }

  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext*, double) const override {
    if (stream_begin < bad_before_) {
      return std::vector<int>(window.size(), kInvalidMark);
    }
    return std::vector<int>(window.size(), 1);
  }

 private:
  size_t bad_before_;
};

TEST(FaultInjection, InvalidMarksQuarantineDegradeAndRecover) {
  const EventStream stream = SmallStream(800, 21);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);

  // Reference: everything relayed (exact CEP result). Overload control
  // is disabled everywhere in this test — its pressure signals are
  // wall-clock dependent and would make the match comparison flaky.
  PassThroughFilter pass;
  OnlineConfig ref_config;
  ref_config.overload.enabled = false;
  OnlineDlacep reference(pattern, &pass, ref_config);
  ReplaySource ref_source(&stream);
  const OnlineResult exact = reference.Run(&ref_source);

  FlakyFilter flaky(/*bad_before=*/100);
  OnlineConfig config;
  config.num_threads = 2;
  config.overload.enabled = false;
  config.health.probe_period = 2;
  config.health.probe_passes = 2;
  OnlineDlacep online(pattern, &flaky, config);
  ReplaySource source(&stream);
  const OnlineResult result = online.Run(&source);

  ExpectAccounted(result.stats);
  EXPECT_GT(result.stats.windows_quarantined, 0u);
  EXPECT_GT(result.stats.windows_degraded, 0u);
  EXPECT_GE(result.stats.health_degrades, 1u);
  EXPECT_GE(result.stats.health_recoveries, 1u);
  // The flaky filter relays everything when healthy and the runtime
  // relays everything while quarantined/degraded, so recall is 1.0:
  // the match set equals exact CEP's.
  EXPECT_EQ(result.matches.size(), exact.matches.size());
  EXPECT_EQ(result.matches.IntersectionSize(exact.matches),
            exact.matches.size());
}

TEST(FaultInjection, WedgedWorkerIsAbandonedAtTheDeadline) {
  const EventStream stream = SmallStream(600, 33);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);

  FaultPlan plan;
  plan.wedge = true;
  plan.wedge_window = 2;
  plan.wedge_seconds = 0.3;
  FaultInjector injector(plan);

  PassThroughFilter pass;
  OnlineConfig config;
  config.num_threads = 2;
  config.overload.enabled = false;
  config.health.mark_deadline_seconds = 0.05;
  config.worker_window_hook = [&injector](uint64_t seq) {
    injector.OnWorkerWindow(seq);
  };
  OnlineDlacep online(pattern, &pass, config);
  ReplaySource source(&stream);
  const OnlineResult result = online.Run(&source);

  ExpectAccounted(result.stats);
  EXPECT_GE(result.stats.health_violations, 1u);
  EXPECT_GE(result.stats.windows_quarantined, 1u);
  EXPECT_GE(result.stats.health_degrades, 1u);
  // Pass-through relays everything, and so do quarantined/degraded
  // windows — the wedge costs latency, never matches.
  PassThroughFilter ref_pass;
  OnlineConfig ref_config;
  ref_config.overload.enabled = false;
  OnlineDlacep reference(pattern, &ref_pass, ref_config);
  ReplaySource ref_source(&stream);
  const OnlineResult exact = reference.Run(&ref_source);
  EXPECT_EQ(result.matches.size(), exact.matches.size());
}

// ---------------------------------------------------------------------
// Source faults: retry-with-backoff and permanent aborts.

TEST(FaultInjection, TransientSourceFailuresAreRetriedLosslessly) {
  const EventStream stream = SmallStream(400, 5);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);

  FaultPlan plan;
  plan.source_fail = true;
  plan.fail_at = 50;
  plan.fail_count = 2;
  FaultInjector injector(plan);
  auto source =
      injector.WrapSource(std::make_unique<ReplaySource>(&stream));

  PassThroughFilter pass;
  OnlineDlacep online(pattern, &pass, OnlineConfig{});
  OnlineResult result;
  ASSERT_TRUE(online.Run(source.get(), &result).ok());

  ExpectAccounted(result.stats);
  EXPECT_EQ(result.stats.events_ingested, stream.size());
  EXPECT_EQ(result.stats.source_read_errors, 2u);
  EXPECT_EQ(result.stats.source_retries, 2u);
  EXPECT_FALSE(result.stats.source_aborted);
}

TEST(FaultInjection, PermanentSourceFailureAbortsCleanly) {
  const EventStream stream = SmallStream(400, 5);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);

  FaultPlan plan;
  plan.source_fail = true;
  plan.fail_at = 120;
  plan.fail_count = 0;  // permanent
  FaultInjector injector(plan);
  auto source =
      injector.WrapSource(std::make_unique<ReplaySource>(&stream));

  PassThroughFilter pass;
  OnlineDlacep online(pattern, &pass, OnlineConfig{});
  OnlineResult result;
  ASSERT_TRUE(online.Run(source.get(), &result).ok());

  ExpectAccounted(result.stats);
  EXPECT_TRUE(result.stats.source_aborted);
  EXPECT_EQ(result.stats.events_ingested, 120u);
}

TEST(FaultInjection, CorruptSourceIsDeterministicPerSeed) {
  const EventStream stream = SmallStream(300, 9);
  FaultPlan plan;
  plan.corrupt_probability = 0.1;

  auto corrupt_ids = [&](const FaultPlan& p) {
    FaultInjector injector(p);
    auto source =
        injector.WrapSource(std::make_unique<ReplaySource>(&stream));
    std::vector<size_t> ids;
    Event event;
    size_t index = 0;
    while (source->Read(&event).ok()) {
      if (std::isnan(event.timestamp)) ids.push_back(index);
      ++index;
    }
    return ids;
  };

  const std::vector<size_t> a = corrupt_ids(plan);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, corrupt_ids(plan));  // same seed, same corruption
  FaultPlan other = plan;
  other.seed = 999;
  EXPECT_NE(a, corrupt_ids(other));
}

// ---------------------------------------------------------------------
// Checkpoint/restore.

CheckpointState SampleState() {
  CheckpointState s;
  s.mark_size = 16;
  s.step_size = 8;
  s.appended = 120;
  s.next_begin = 112;
  s.windows_dispatched = 14;
  s.last_end = 120;
  s.buffer_offset = 112;
  for (uint64_t i = 112; i < 120; ++i) {
    s.buffer.push_back(Event(i, 1, static_cast<double>(i), {0.5}));
  }
  s.marked_ids = {3, 5, 5, 9};
  s.marked_events.push_back(Event(3, 2, 3.0, {1.0}));
  s.seen = {3, 5};
  s.quarantined = {9};
  s.windows_closed = 14;
  s.health_violations = 1;
  s.controller_level = 3;
  s.probe_pass_run = 1;
  s.degraded_since_probe = 5;
  return s;
}

TEST(Checkpoint, RoundTripRestoresEveryField) {
  const std::string dir = FreshDir("ck_roundtrip");
  const CheckpointState saved = SampleState();
  ASSERT_TRUE(SaveCheckpoint(saved, dir).ok());
  auto loaded = LoadCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().appended, saved.appended);
  EXPECT_EQ(loaded.value().next_begin, saved.next_begin);
  EXPECT_EQ(loaded.value().buffer.size(), saved.buffer.size());
  EXPECT_EQ(loaded.value().buffer[0].id, saved.buffer[0].id);
  EXPECT_EQ(loaded.value().marked_ids, saved.marked_ids);
  EXPECT_EQ(loaded.value().seen, saved.seen);
  EXPECT_EQ(loaded.value().quarantined, saved.quarantined);
  EXPECT_EQ(loaded.value().controller_level, saved.controller_level);
  EXPECT_EQ(loaded.value().probe_pass_run, saved.probe_pass_run);
  EXPECT_EQ(loaded.value().degraded_since_probe, saved.degraded_since_probe);
}

TEST(Checkpoint, BitFlipFailsTheChecksum) {
  const std::string dir = FreshDir("ck_bitflip");
  ASSERT_TRUE(SaveCheckpoint(SampleState(), dir).ok());
  // Flip a payload bit (past the 8-byte magic+version header).
  ASSERT_TRUE(BitFlipFile(CheckpointPath(dir), 40, 3).ok());
  EXPECT_FALSE(LoadCheckpoint(dir).ok());
}

TEST(Checkpoint, TruncationIsRejected) {
  const std::string dir = FreshDir("ck_truncate");
  ASSERT_TRUE(SaveCheckpoint(SampleState(), dir).ok());
  ASSERT_TRUE(TruncateFile(CheckpointPath(dir), 25).ok());
  EXPECT_FALSE(LoadCheckpoint(dir).ok());
}

TEST(Checkpoint, KillAndRestoreIsByteIdenticalToUninterruptedRun) {
  const EventStream stream = SmallStream(900, 77);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  const std::string dir = FreshDir("ck_restore");

  // Run A: uninterrupted. The overload controller stays disabled: its
  // pressure signals are wall-clock dependent, and this test pins exact
  // byte equality across runs.
  PassThroughFilter pass_a;
  OnlineConfig config_a;
  config_a.num_threads = 2;
  config_a.overload.enabled = false;
  OnlineDlacep online_a(pattern, &pass_a, config_a);
  ReplaySource source_a(&stream);
  const OnlineResult a = online_a.Run(&source_a);

  // Run B: permanent source failure mid-stream ("kill"), with a final
  // checkpoint written at abort.
  FaultPlan plan;
  plan.source_fail = true;
  plan.fail_at = 500;
  plan.fail_count = 0;
  FaultInjector injector(plan);
  auto source_b =
      injector.WrapSource(std::make_unique<ReplaySource>(&stream));
  PassThroughFilter pass_b;
  OnlineConfig config_b = config_a;
  config_b.checkpoint.dir = dir;
  config_b.checkpoint.every_events = 128;
  OnlineDlacep online_b(pattern, &pass_b, config_b);
  OnlineResult b;
  ASSERT_TRUE(online_b.Run(source_b.get(), &b).ok());
  EXPECT_TRUE(b.stats.source_aborted);
  ExpectAccounted(b.stats);

  // Run C: restore from B's checkpoint over a fresh source.
  PassThroughFilter pass_c;
  OnlineConfig config_c = config_a;
  config_c.checkpoint.dir = dir;
  config_c.checkpoint.restore = true;
  OnlineDlacep online_c(pattern, &pass_c, config_c);
  ReplaySource source_c(&stream);
  OnlineResult c;
  ASSERT_TRUE(online_c.Run(&source_c, &c).ok());

  ExpectAccounted(c.stats);
  EXPECT_EQ(c.stats.events_ingested, stream.size());
  EXPECT_EQ(c.marked_ids, a.marked_ids);
  EXPECT_EQ(c.marked_events, a.marked_events);
  EXPECT_EQ(c.matches.size(), a.matches.size());
  EXPECT_EQ(c.matches.IntersectionSize(a.matches), a.matches.size());
}

TEST(Checkpoint, RestoreRefusesDroppingIngestAndMissingFiles) {
  const EventStream stream = SmallStream(100, 3);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter pass;

  OnlineConfig config;
  config.checkpoint.dir = FreshDir("ck_missing");
  config.checkpoint.restore = true;
  OnlineDlacep missing(pattern, &pass, config);
  ReplaySource source(&stream);
  OnlineResult result;
  EXPECT_FALSE(missing.Run(&source, &result).ok());  // no checkpoint file

  config.drop_when_full = true;
  OnlineDlacep dropping(pattern, &pass, config);
  ReplaySource source2(&stream);
  EXPECT_FALSE(dropping.Run(&source2, &result).ok());  // lossy + restore
}

// ---------------------------------------------------------------------
// NaN injection into inference and model corruption.

DlacepConfig TinyNetworkConfig() {
  DlacepConfig config;
  config.network.hidden_dim = 4;
  config.network.num_layers = 1;
  config.train.max_epochs = 2;
  return config;
}

TEST(FaultInjection, NanHookPoisonsMarksThroughTheSentinel) {
  const EventStream stream = SmallStream(300, 13);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  BuiltDlacep built = BuildDlacep(pattern, stream,
                                  FilterKind::kEventNetwork,
                                  TinyNetworkConfig());
  const StreamFilter& filter = built.pipeline->filter();

  EventStream window(stream.schema_ptr());
  for (size_t i = 0; i < 16; ++i) window.AppendArrival(stream[i]);
  InferenceContext ctx;

  // Poison every pass: marks must be the whole-window sentinel.
  FaultPlan plan;
  plan.nan_burst = true;
  plan.nan_begin_pass = 0;
  plan.nan_pass_count = 1u << 20;
  {
    FaultInjector injector(plan);
    injector.InstallNanHook();
    const std::vector<int> marks = filter.MarkOnline(window, 0, &ctx, 0.0);
    ASSERT_EQ(marks.size(), window.size());
    for (int m : marks) EXPECT_EQ(m, kInvalidMark);
  }
  // Injector destroyed: the hook is uninstalled and marks are valid.
  const std::vector<int> marks = filter.MarkOnline(window, 0, &ctx, 0.0);
  for (int m : marks) EXPECT_NE(m, kInvalidMark);
}

TEST(FaultInjection, CorruptedParametersYieldTheSentinelNotGarbage) {
  const EventStream stream = SmallStream(300, 17);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  BuiltDlacep built = BuildDlacep(pattern, stream,
                                  FilterKind::kEventNetwork,
                                  TinyNetworkConfig());
  auto* trainable =
      dynamic_cast<TrainableFilter*>(&built.pipeline->filter());
  ASSERT_NE(trainable, nullptr);
  CorruptParams(trainable);

  EventStream window(stream.schema_ptr());
  for (size_t i = 0; i < 16; ++i) window.AppendArrival(stream[i]);
  InferenceContext ctx;
  const std::vector<int> marks =
      built.pipeline->filter().MarkOnline(window, 0, &ctx, 0.0);
  ASSERT_EQ(marks.size(), window.size());
  for (int m : marks) EXPECT_EQ(m, kInvalidMark);
}

// ---------------------------------------------------------------------
// Model file (DLNN v2) integrity.

TEST(ModelFile, BitFlipFailsTheChecksum) {
  Rng rng(71);
  Dense layer("d", 3, 2, &rng);
  const std::string path = ::testing::TempDir() + "/dlnn_bitflip.bin";
  ASSERT_TRUE(SaveParameters(layer.Params(), path).ok());
  ASSERT_TRUE(BitFlipFile(path, 20, 5).ok());
  EXPECT_FALSE(LoadParameters(layer.Params(), path).ok());
  std::remove(path.c_str());
}

TEST(ModelFile, TruncationIsRejected) {
  Rng rng(72);
  Dense layer("d", 3, 2, &rng);
  const std::string path = ::testing::TempDir() + "/dlnn_truncate.bin";
  ASSERT_TRUE(SaveParameters(layer.Params(), path).ok());
  ASSERT_TRUE(TruncateFile(path, 30).ok());
  EXPECT_FALSE(LoadParameters(layer.Params(), path).ok());
  std::remove(path.c_str());
}

TEST(ModelFile, FailedLoadLeavesParametersUntouched) {
  Rng rng(73);
  Dense layer("d", 4, 3, &rng);
  const std::string path = ::testing::TempDir() + "/dlnn_staged.bin";
  ASSERT_TRUE(SaveParameters(layer.Params(), path).ok());
  ASSERT_TRUE(BitFlipFile(path, 24, 1).ok());

  std::vector<Matrix> before;
  for (Parameter* p : layer.Params()) before.push_back(p->value);
  EXPECT_FALSE(LoadParameters(layer.Params(), path).ok());
  const std::vector<Parameter*> params = layer.Params();
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(params[i]->value.MaxAbsDiff(before[i]), 0.0)
        << params[i]->name;
  }
  std::remove(path.c_str());
}

TEST(ModelFile, NonFiniteWeightsAreRejectedAtLoad) {
  Rng rng(74);
  Dense layer("d", 2, 2, &rng);
  layer.Params()[0]->value(0, 0) =
      std::numeric_limits<double>::quiet_NaN();
  const std::string path = ::testing::TempDir() + "/dlnn_nan.bin";
  ASSERT_TRUE(SaveParameters(layer.Params(), path).ok());

  Dense fresh("d", 2, 2, &rng);
  EXPECT_FALSE(LoadParameters(fresh.Params(), path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dlacep
