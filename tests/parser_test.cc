// Unit tests for the PQL lexer and parser.

#include <gtest/gtest.h>

#include "pattern/lexer.h"
#include "pattern/parser.h"
#include "stream/generator.h"

namespace dlacep {
namespace {

std::shared_ptr<Schema> TestSchema() {
  return MakeSyntheticSchema(/*num_types=*/6, /*num_attrs=*/2);
}

TEST(Lexer, TokenizesAllTokenKinds) {
  auto tokens = Tokenize("SEQ(A a) 1.5e2 <= >= == != .. { } * + - .");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens.value()) kinds.push_back(t.kind);
  const std::vector<TokenKind> expected = {
      TokenKind::kIdent,  TokenKind::kLParen, TokenKind::kIdent,
      TokenKind::kIdent,  TokenKind::kRParen, TokenKind::kNumber,
      TokenKind::kLe,     TokenKind::kGe,     TokenKind::kEq,
      TokenKind::kNe,     TokenKind::kDotDot, TokenKind::kLBrace,
      TokenKind::kRBrace, TokenKind::kStar,   TokenKind::kPlus,
      TokenKind::kMinus,  TokenKind::kDot,    TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, ParsesNumbersIncludingExponents) {
  auto tokens = Tokenize("0.55 150 1e3 2.5E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ(tokens.value()[0].number, 0.55);
  EXPECT_DOUBLE_EQ(tokens.value()[1].number, 150);
  EXPECT_DOUBLE_EQ(tokens.value()[2].number, 1000);
  EXPECT_DOUBLE_EQ(tokens.value()[3].number, 0.025);
}

TEST(Lexer, DotDotDoesNotSwallowFractions) {
  auto tokens = Tokenize("1..3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens.value()[1].kind, TokenKind::kDotDot);
  EXPECT_EQ(tokens.value()[2].kind, TokenKind::kNumber);
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("SEQ(A a) @").ok());
  EXPECT_FALSE(Tokenize("a = b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(Parser, ParsesSequenceWithConditionsAndWindow) {
  auto pattern = ParsePattern(
      "PATTERN SEQ(A a, B b, C c) WHERE 0.5 * a.vol < b.vol AND "
      "b.a1 < c.a1 WITHIN 42 EVENTS",
      TestSchema());
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  EXPECT_EQ(pattern.value().root().kind, OpKind::kSeq);
  EXPECT_EQ(pattern.value().num_vars(), 3u);
  EXPECT_EQ(pattern.value().window().count_size(), 42u);
  EXPECT_EQ(pattern.value().conditions().size(), 1u);  // one AND tree
}

TEST(Parser, ChainedComparisonExpandsToConjunction) {
  auto pattern = ParsePattern(
      "SEQ(A a, B b, C c) WHERE a.vol < b.vol < c.vol WITHIN 10",
      TestSchema());
  ASSERT_TRUE(pattern.ok());
  // Rendered as two comparisons.
  const std::string text = pattern.value().ToString();
  EXPECT_NE(text.find("AND"), std::string::npos) << text;
}

TEST(Parser, DefaultWindowWhenWithinOmitted) {
  auto pattern = ParsePattern("SEQ(A a, B b)", TestSchema());
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern.value().window().kind, WindowKind::kCount);
  EXPECT_EQ(pattern.value().window().count_size(), 100u);
}

TEST(Parser, TimeWindow) {
  auto pattern =
      ParsePattern("SEQ(A a, B b) WITHIN 2.5 TIME", TestSchema());
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(pattern.value().window().kind, WindowKind::kTime);
  EXPECT_DOUBLE_EQ(pattern.value().window().size, 2.5);
}

TEST(Parser, KleeneWithBounds) {
  auto pattern = ParsePattern(
      "SEQ(A a, KC(B ks){2..4}, C c) WITHIN 10", TestSchema());
  ASSERT_TRUE(pattern.ok());
  const PatternNode& kc = *pattern.value().root().children[1];
  EXPECT_EQ(kc.kind, OpKind::kKleene);
  EXPECT_EQ(kc.min_reps, 2u);
  EXPECT_EQ(kc.max_reps, 4u);
  EXPECT_TRUE(
      pattern.value().vars()[static_cast<size_t>(kc.children[0]->var)]
          .kleene);
}

TEST(Parser, NegationMarksVariables) {
  auto pattern = ParsePattern(
      "SEQ(A a, NEG(C nc), B b) WITHIN 10", TestSchema());
  ASSERT_TRUE(pattern.ok());
  bool found = false;
  for (const VarInfo& v : pattern.value().vars()) {
    if (v.name == "nc") {
      EXPECT_TRUE(v.negated);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Parser, AnyMultiTypePosition) {
  auto pattern = ParsePattern(
      "SEQ(ANY(A, B, C) x, D y) WHERE x.vol < y.vol WITHIN 10",
      TestSchema());
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
  EXPECT_EQ(pattern.value().root().children[0]->types.size(), 3u);
}

TEST(Parser, DisjAndConj) {
  auto disj = ParsePattern(
      "DISJ(SEQ(A a, B b), SEQ(C c, D d)) WITHIN 10", TestSchema());
  ASSERT_TRUE(disj.ok());
  EXPECT_EQ(disj.value().root().kind, OpKind::kDisj);

  auto conj =
      ParsePattern("CONJ(A a, B b, C c) WITHIN 10", TestSchema());
  ASSERT_TRUE(conj.ok());
  EXPECT_EQ(conj.value().root().kind, OpKind::kConj);
}

TEST(Parser, NumericOffsetsAndCoefficients) {
  auto pattern = ParsePattern(
      "SEQ(A a, B b) WHERE 2 * a.vol + 1.5 < b.vol AND b.vol < 10 "
      "WITHIN 10",
      TestSchema());
  ASSERT_TRUE(pattern.ok()) << pattern.status().ToString();
}

struct BadQuery {
  const char* query;
  const char* why;
};

class ParserErrors : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrors, AreRejectedCleanly) {
  auto pattern = ParsePattern(GetParam().query, TestSchema());
  EXPECT_FALSE(pattern.ok()) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrors,
    ::testing::Values(
        BadQuery{"SEQ(A a, B b", "missing paren"},
        BadQuery{"SEQ(Z z)", "unknown type"},
        BadQuery{"SEQ(A)", "missing variable"},
        BadQuery{"SEQ(A a, A a)", "duplicate variable"},
        BadQuery{"SEQ(A a) WHERE q.vol < a.vol", "unknown variable"},
        BadQuery{"SEQ(A a) WHERE a.nope < 1", "unknown attribute"},
        BadQuery{"SEQ(A a) WHERE a.vol", "missing comparison"},
        BadQuery{"SEQ(A a) WITHIN 0 EVENTS", "zero window"},
        BadQuery{"SEQ(A a) WITHIN 2.5 EVENTS", "fractional count"},
        BadQuery{"SEQ(A a, KC(B k){3..1}, C c)", "inverted KC bounds"},
        BadQuery{"SEQ(A a) trailing", "trailing tokens"},
        BadQuery{"NEG(A a)", "bare negation"},
        BadQuery{"SEQ(NEG(A a), B b)", "NEG needs positive before"},
        BadQuery{"SEQ(A a, NEG(B b))", "NEG needs positive after"},
        BadQuery{"ANY(A, B)", "ANY without variable"}));

TEST(Parser, RoundTripThroughEvaluation) {
  // A parsed pattern must be directly usable by the engines (smoke).
  SyntheticConfig config;
  config.num_events = 50;
  config.seed = 3;
  const EventStream stream = GenerateSynthetic(config);
  auto pattern = ParsePattern(
      "SEQ(A a, B b) WHERE a.vol < b.vol WITHIN 10",
      stream.schema_ptr());
  ASSERT_TRUE(pattern.ok());
  EXPECT_TRUE(pattern.value().Validate().ok());
}

}  // namespace
}  // namespace dlacep
