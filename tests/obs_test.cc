// Observability layer unit and property tests: log2 bucket boundary
// placement, the Quantile-within-one-bucket guarantee, striped
// counter/histogram aggregation under concurrent writers (this file
// runs in the CI TSan job), the Prometheus text exposition format, the
// runtime kill switch, and TraceSpan lifecycle. Registry instruments
// are process-global, so every test uses its own metric names.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/stages.h"
#include "obs/trace.h"

namespace dlacep {
namespace obs {
namespace {

// ---------------------------------------------------------------------
// Bucket geometry.

TEST(HistogramBuckets, PowerOfTwoEdgesAreInclusiveUpperBounds) {
  Histogram h(HistogramOptions{/*min_value=*/1.0, /*num_buckets=*/4});
  // Bucket i covers (min·2^(i-1), min·2^i]; bounds are 1, 2, 4, 8, +Inf.
  EXPECT_EQ(h.BucketIndex(0.5), 0u);
  EXPECT_EQ(h.BucketIndex(1.0), 0u);  // exactly min_value: underflow
  EXPECT_EQ(h.BucketIndex(1.5), 1u);
  EXPECT_EQ(h.BucketIndex(2.0), 1u);  // exact power of two: inclusive
  EXPECT_EQ(h.BucketIndex(2.0000001), 2u);
  EXPECT_EQ(h.BucketIndex(4.0), 2u);
  EXPECT_EQ(h.BucketIndex(8.0), 3u);
  EXPECT_EQ(h.BucketIndex(8.1), 4u);   // overflow bucket
  EXPECT_EQ(h.BucketIndex(1e12), 4u);  // saturates, never out of range
  EXPECT_EQ(h.num_buckets(), 5u);
}

TEST(HistogramBuckets, BoundsMatchIndexRoundTrip) {
  Histogram h;  // runtime/stats.h defaults: 1µs min, 27 finite buckets
  for (size_t i = 0; i + 1 < h.num_buckets(); ++i) {
    const double bound = h.BucketBound(i);
    // The bound itself belongs to bucket i; nudging above moves to i+1.
    EXPECT_EQ(h.BucketIndex(bound), i);
    EXPECT_EQ(h.BucketIndex(bound * 1.0001), i + 1);
  }
  EXPECT_TRUE(std::isinf(h.BucketBound(h.num_buckets() - 1)));
}

TEST(HistogramBuckets, PathologicalValuesLandInUnderflow) {
  Histogram h(HistogramOptions{1.0, 4});
  EXPECT_EQ(h.BucketIndex(std::nan("")), 0u);
  EXPECT_EQ(h.BucketIndex(-3.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  h.Observe(std::nan(""));
  h.Observe(-3.0);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.BucketCounts()[0], 2u);
}

// ---------------------------------------------------------------------
// Quantile: nearest-rank over buckets is exact to one bucket.

TEST(HistogramQuantile, WithinOneBucketOfExactOverRandomValues) {
  Histogram h;
  Rng rng(4242);
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    // Log-uniform over 7 decades — spans most buckets while staying
    // inside the finite range (1µs·2^26 ≈ 67s), where the one-bucket
    // guarantee is meaningful (the overflow bucket's bound is +Inf).
    const double v = std::pow(10.0, -6.0 + 7.0 * rng.Uniform());
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    const double estimate = h.Quantile(q);
    // The estimate is the upper bound of the bucket holding the exact
    // nearest-rank value — same bucket, so within one log2 bucket.
    EXPECT_EQ(h.BucketIndex(estimate), h.BucketIndex(exact)) << "q=" << q;
    EXPECT_GE(estimate, exact) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
  }
}

TEST(HistogramQuantile, EmptyAndSingleObservation) {
  Histogram h(HistogramOptions{1.0, 8});
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Observe(3.0);  // bucket (2, 4]
  EXPECT_EQ(h.Quantile(0.0), 4.0);
  EXPECT_EQ(h.Quantile(0.5), 4.0);
  EXPECT_EQ(h.Quantile(1.0), 4.0);
}

// ---------------------------------------------------------------------
// Striped aggregation under concurrent writers (TSan coverage).

TEST(Concurrency, CounterSumsAllShards) {
  Counter* c = MetricsRegistry::Global().GetCounter(
      "obs_test_concurrent_counter_total");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(Concurrency, HistogramCountSumAndBucketsAggregate) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "obs_test_concurrent_hist", {}, "",
      HistogramOptions{/*min_value=*/1.0, /*num_buckets=*/8});
  h->Reset();
  constexpr int kThreads = 8;
  constexpr int kObservations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      // 1.5·2^t is exactly representable, so the aggregated sum is
      // order-independent and can be compared exactly.
      const double v = 1.5 * std::ldexp(1.0, t % 4);
      for (int i = 0; i < kObservations; ++i) h->Observe(v);
    });
  }
  for (auto& t : threads) t.join();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kObservations;
  EXPECT_EQ(h->Count(), total);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, total);
  double expected_sum = 0.0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += 1.5 * std::ldexp(1.0, t % 4) * kObservations;
  }
  EXPECT_DOUBLE_EQ(h->Sum(), expected_sum);
}

// ---------------------------------------------------------------------
// Prometheus exposition.

TEST(Exposition, CounterGaugeAndHistogramSamples) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* a = reg.GetCounter("obs_test_requests_total", {{"kind", "a"}},
                              "test counter");
  Counter* b = reg.GetCounter("obs_test_requests_total", {{"kind", "b"}});
  Gauge* g = reg.GetGauge("obs_test_depth");
  Histogram* h = reg.GetHistogram("obs_test_latency_seconds", {}, "",
                                  HistogramOptions{1.0, 3});
  a->Reset();
  b->Reset();
  h->Reset();
  a->Increment(3);
  b->Increment(5);
  g->Set(2.5);
  h->Observe(1.5);  // bucket le=2
  h->Observe(3.0);  // bucket le=4
  h->Observe(99.0);  // overflow le=+Inf

  const std::string text = reg.RenderPrometheus();
  EXPECT_NE(text.find("# HELP obs_test_requests_total test counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_requests_total{kind=\"a\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_requests_total{kind=\"b\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("obs_test_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_test_latency_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: 0 at le=1, 1 at le=2, 2 at le=4, 3 at +Inf.
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_sum 103.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_latency_seconds_count 3\n"),
            std::string::npos);
}

TEST(Exposition, EveryFamilyHeaderAppearsExactlyOnce) {
  // Register the full standard schema plus interleaved same-name
  // entries, then check the format-level invariant the exposition
  // format requires: one # TYPE line per family across the whole
  // document, regardless of registration order.
  TouchStandardMetrics();
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.GetCounter("obs_test_interleaved_total", {{"x", "1"}});
  reg.GetCounter("obs_test_other_total");
  reg.GetCounter("obs_test_interleaved_total", {{"x", "2"}});
  const std::string text = reg.RenderPrometheus();
  std::map<std::string, int> type_lines;
  size_t pos = 0;
  while ((pos = text.find("# TYPE ", pos)) != std::string::npos) {
    const size_t name_begin = pos + 7;
    const size_t name_end = text.find(' ', name_begin);
    ASSERT_NE(name_end, std::string::npos);
    ++type_lines[text.substr(name_begin, name_end - name_begin)];
    pos = name_end;
  }
  EXPECT_FALSE(type_lines.empty());
  for (const auto& [name, count] : type_lines) {
    EXPECT_EQ(count, 1) << "family " << name << " emitted " << count
                        << " headers";
  }
  EXPECT_EQ(type_lines["obs_test_interleaved_total"], 1);
}

TEST(Exposition, JsonRendersParsableStructure) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_json_total", {{"q", "v\"w"}});
  c->Reset();
  c->Increment(7);
  const std::string json = reg.RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  // Label values are escaped and the counter value is present.
  EXPECT_NE(json.find("{\"name\":\"obs_test_json_total\",\"labels\":"
                      "{\"q\":\"v\\\"w\"},\"value\":7}"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Kill switch and reset.

TEST(KillSwitch, DisabledMutationsAreNoOps) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_toggle_total");
  Gauge* g = reg.GetGauge("obs_test_toggle_gauge");
  Histogram* h = reg.GetHistogram("obs_test_toggle_hist");
  c->Reset();
  g->Reset();
  h->Reset();

  MetricsRegistry::SetEnabled(false);
  c->Increment(10);
  g->Set(5.0);
  g->Add(2.0);
  h->Observe(1.0);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->Count(), 0u);

  MetricsRegistry::SetEnabled(true);
  c->Increment(10);
  g->Add(2.0);
  h->Observe(1.0);
  EXPECT_EQ(c->Value(), 10u);
  EXPECT_EQ(g->Value(), 2.0);
  EXPECT_EQ(h->Count(), 1u);
}

TEST(KillSwitch, ResetValuesZeroesEverythingButKeepsPointersValid) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* c = reg.GetCounter("obs_test_reset_total");
  Histogram* h = reg.GetHistogram("obs_test_reset_hist");
  c->Increment(4);
  h->Observe(2.0);
  reg.ResetValues();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(h->Sum(), 0.0);
  // Same (name, labels) resolves to the same instrument after reset.
  EXPECT_EQ(reg.GetCounter("obs_test_reset_total"), c);
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

// ---------------------------------------------------------------------
// TraceSpan lifecycle.

TEST(TraceSpanTest, RecordsOneObservationOnScopeExit) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("obs_test_span_hist");
  h->Reset();
  {
    TraceSpan span(h);
  }
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_GE(h->Sum(), 0.0);
}

TEST(TraceSpanTest, FinishIsIdempotentAndCancelDiscards) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("obs_test_span_hist2");
  h->Reset();
  {
    TraceSpan span(h);
    span.Finish();
    span.Finish();  // second call must not double-record
  }                 // destructor must not record again
  EXPECT_EQ(h->Count(), 1u);
  {
    TraceSpan span(h);
    span.Cancel();
  }
  EXPECT_EQ(h->Count(), 1u);
}

TEST(TraceSpanTest, DisarmedWhenMetricsDisabled) {
  Histogram* h =
      MetricsRegistry::Global().GetHistogram("obs_test_span_hist3");
  h->Reset();
  MetricsRegistry::SetEnabled(false);
  {
    TraceSpan span(h);
  }
  MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(h->Count(), 0u);
}

// ---------------------------------------------------------------------
// Stage handles.

TEST(Stages, AccessorsAreStableAndTouchRegistersSchema) {
  EXPECT_EQ(StageQueueWait(), StageQueueWait());
  EXPECT_EQ(EventsIngested(), EventsIngested());
  EXPECT_EQ(OverloadTransitions(0, 1), OverloadTransitions(0, 1));
  EXPECT_NE(OverloadTransitions(0, 1), OverloadTransitions(1, 0));
  EXPECT_EQ(CepTransitions("nfa"), CepTransitions("nfa"));
  EXPECT_NE(CepTransitions("nfa"), CepTransitions("tree"));
  TouchStandardMetrics();
  const std::string text = MetricsRegistry::Global().RenderPrometheus();
  for (const char* family :
       {"dlacep_stage_latency_seconds", "dlacep_runtime_events_total",
        "dlacep_runtime_windows_total", "dlacep_runtime_health_total",
        "dlacep_overload_transitions_total", "dlacep_cep_transitions_total",
        "dlacep_queue_depth", "dlacep_overload_level"}) {
    EXPECT_NE(text.find(family), std::string::npos) << family;
  }
  // The NN forward stages are present even though nothing observed them.
  EXPECT_NE(
      text.find("dlacep_stage_latency_seconds_count{stage=\"nn_forward_"
                "infer\"}"),
      std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace dlacep
