// Reproducibility tests: all stochastic components are seeded, so
// training, filtering, and evaluation must be bit-identical across runs
// with the same configuration.

#include <gtest/gtest.h>

#include <cstdio>

#include "dlacep/event_filter.h"
#include "dlacep/pipeline.h"
#include "nn/serialize.h"
#include "pattern/builder.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

Pattern TestPattern(std::shared_ptr<const Schema> schema) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");
  return b.BuildOrDie(std::move(root), WindowSpec::Count(8));
}

TEST(Determinism, BuildDlacepIsBitReproducible) {
  const EventStream train = SmallStream(800, 201);
  const EventStream test = SmallStream(400, 202);
  const Pattern pattern = TestPattern(train.schema_ptr());

  DlacepConfig config;
  config.network.hidden_dim = 6;
  config.network.num_layers = 1;
  config.train.max_epochs = 6;

  auto run = [&] {
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    return built.pipeline->Evaluate(test);
  };
  const PipelineResult a = run();
  const PipelineResult b = run();
  EXPECT_EQ(a.matches.size(), b.matches.size());
  EXPECT_EQ(a.marked_events, b.marked_events);
  auto it_a = a.matches.begin();
  auto it_b = b.matches.begin();
  for (; it_a != a.matches.end(); ++it_a, ++it_b) {
    EXPECT_EQ(it_a->ids, it_b->ids);
  }
}

TEST(Determinism, DifferentNetworkSeedsDiverge) {
  const EventStream train = SmallStream(800, 203);
  const Pattern pattern = TestPattern(train.schema_ptr());

  DlacepConfig a;
  a.network.hidden_dim = 6;
  a.network.num_layers = 1;
  a.train.max_epochs = 3;
  DlacepConfig b = a;
  b.network.seed = a.network.seed + 1;

  BuiltDlacep built_a =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, a);
  BuiltDlacep built_b =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, b);
  // Different initializations — loss trajectories should differ.
  EXPECT_NE(built_a.train_result.final_loss,
            built_b.train_result.final_loss);
}

TEST(Determinism, SavedFilterProducesIdenticalMarksAfterReload) {
  const EventStream train = SmallStream(800, 204);
  const EventStream probe = SmallStream(200, 205);
  const Pattern pattern = TestPattern(train.schema_ptr());

  NetworkConfig network;
  network.hidden_dim = 6;
  network.num_layers = 1;
  const Featurizer featurizer(pattern, train);
  EventNetworkFilter filter(&featurizer, network, 0.5);
  const InputAssembler assembler = InputAssembler::ForWindow(8);
  const FilterDataset dataset =
      BuildFilterDataset(pattern, train, assembler, featurizer, 0.9, 17);
  TrainConfig train_config;
  train_config.max_epochs = 5;
  filter.Fit(dataset.train_event, train_config);

  const WindowRange range{0, 64};
  const std::vector<int> marks_before = filter.Mark(probe, range);

  const std::string path = ::testing::TempDir() + "/filter_roundtrip.bin";
  ASSERT_TRUE(SaveParameters(filter.Params(), path).ok());

  // A fresh filter with different random init, restored from disk.
  NetworkConfig other = network;
  other.seed = network.seed + 99;
  EventNetworkFilter restored(&featurizer, other, 0.5);
  EXPECT_NE(restored.Mark(probe, range), marks_before);  // pre-load
  ASSERT_TRUE(LoadParameters(restored.Params(), path).ok());
  EXPECT_EQ(restored.Mark(probe, range), marks_before);  // post-load
  std::remove(path.c_str());
}

TEST(Determinism, RngStreamsAreStableAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
  EXPECT_DOUBLE_EQ(Rng(7).Normal(), Rng(7).Normal());
  EXPECT_EQ(Rng(9).Permutation(20), Rng(9).Permutation(20));
}

}  // namespace
}  // namespace dlacep
