// Reproducibility tests: all stochastic components are seeded, so
// training, filtering, and evaluation must be bit-identical across runs
// with the same configuration.

#include <gtest/gtest.h>

#include <cstdio>

#include "dlacep/event_filter.h"
#include "dlacep/pipeline.h"
#include "nn/serialize.h"
#include "pattern/builder.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

Pattern TestPattern(std::shared_ptr<const Schema> schema) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
  b.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "bb");
  return b.BuildOrDie(std::move(root), WindowSpec::Count(8));
}

TEST(Determinism, BuildDlacepIsBitReproducible) {
  const EventStream train = SmallStream(800, 201);
  const EventStream test = SmallStream(400, 202);
  const Pattern pattern = TestPattern(train.schema_ptr());

  DlacepConfig config;
  config.network.hidden_dim = 6;
  config.network.num_layers = 1;
  config.train.max_epochs = 6;

  auto run = [&] {
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    return built.pipeline->Evaluate(test);
  };
  const PipelineResult a = run();
  const PipelineResult b = run();
  EXPECT_EQ(a.matches.size(), b.matches.size());
  EXPECT_EQ(a.marked_events, b.marked_events);
  auto it_a = a.matches.begin();
  auto it_b = b.matches.begin();
  for (; it_a != a.matches.end(); ++it_a, ++it_b) {
    EXPECT_EQ(it_a->ids, it_b->ids);
  }
}

TEST(Determinism, DifferentNetworkSeedsDiverge) {
  const EventStream train = SmallStream(800, 203);
  const Pattern pattern = TestPattern(train.schema_ptr());

  DlacepConfig a;
  a.network.hidden_dim = 6;
  a.network.num_layers = 1;
  a.train.max_epochs = 3;
  DlacepConfig b = a;
  b.network.seed = a.network.seed + 1;

  BuiltDlacep built_a =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, a);
  BuiltDlacep built_b =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, b);
  // Different initializations — loss trajectories should differ.
  EXPECT_NE(built_a.train_result.final_loss,
            built_b.train_result.final_loss);
}

TEST(Determinism, SavedFilterProducesIdenticalMarksAfterReload) {
  const EventStream train = SmallStream(800, 204);
  const EventStream probe = SmallStream(200, 205);
  const Pattern pattern = TestPattern(train.schema_ptr());

  NetworkConfig network;
  network.hidden_dim = 6;
  network.num_layers = 1;
  const Featurizer featurizer(pattern, train);
  EventNetworkFilter filter(&featurizer, network, 0.5);
  const InputAssembler assembler = InputAssembler::ForWindow(8);
  const FilterDataset dataset =
      BuildFilterDataset(pattern, train, assembler, featurizer, 0.9, 17);
  TrainConfig train_config;
  train_config.max_epochs = 5;
  filter.Fit(dataset.train_event, train_config);

  const WindowRange range{0, 64};
  const std::vector<int> marks_before = filter.Mark(probe, range);

  const std::string path = ::testing::TempDir() + "/filter_roundtrip.bin";
  ASSERT_TRUE(SaveParameters(filter.Params(), path).ok());

  // A fresh filter with different random init, restored from disk.
  NetworkConfig other = network;
  other.seed = network.seed + 99;
  EventNetworkFilter restored(&featurizer, other, 0.5);
  EXPECT_NE(restored.Mark(probe, range), marks_before);  // pre-load
  ASSERT_TRUE(LoadParameters(restored.Params(), path).ok());
  restored.OnParamsChanged();  // repack frozen inference weights
  EXPECT_EQ(restored.Mark(probe, range), marks_before);  // post-load
  std::remove(path.c_str());
}

/// Non-owning view so one trained filter can serve several pipelines
/// with different num_threads settings.
class BorrowedFilter : public StreamFilter {
 public:
  explicit BorrowedFilter(const StreamFilter* inner) : inner_(inner) {}
  std::string name() const override { return inner_->name(); }
  std::vector<int> Mark(const EventStream& stream,
                        WindowRange range) const override {
    return inner_->Mark(stream, range);
  }

 private:
  const StreamFilter* inner_;
};

/// Parallel filtration must be byte-identical to the sequential path:
/// same mark vector (merge order included), same dedup count, same
/// filtering ratio, same matches.
void ExpectThreadCountInvariance(FilterKind kind) {
  const EventStream train = SmallStream(800, 206);
  const EventStream test = SmallStream(400, 207);
  const Pattern pattern = TestPattern(train.schema_ptr());

  DlacepConfig config;
  config.network.hidden_dim = 6;
  config.network.num_layers = 1;
  config.train.max_epochs = 6;

  BuiltDlacep built = BuildDlacep(pattern, train, kind, config);

  auto evaluate = [&](size_t num_threads) {
    DlacepConfig threaded = config;
    threaded.num_threads = num_threads;
    DlacepPipeline pipeline(
        pattern,
        std::make_unique<BorrowedFilter>(&built.pipeline->filter()),
        threaded);
    return pipeline.Evaluate(test);
  };

  const PipelineResult sequential = evaluate(1);
  for (const size_t num_threads : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("num_threads=" + std::to_string(num_threads));
    const PipelineResult parallel = evaluate(num_threads);
    EXPECT_EQ(parallel.marked_ids, sequential.marked_ids);
    EXPECT_EQ(parallel.marked_events, sequential.marked_events);
    EXPECT_DOUBLE_EQ(parallel.filtering_ratio(),
                     sequential.filtering_ratio());
    ASSERT_EQ(parallel.matches.size(), sequential.matches.size());
    auto it_p = parallel.matches.begin();
    auto it_s = sequential.matches.begin();
    for (; it_s != sequential.matches.end(); ++it_p, ++it_s) {
      EXPECT_EQ(it_p->ids, it_s->ids);
    }
  }
}

TEST(Determinism, EventNetworkMarksAreThreadCountInvariant) {
  ExpectThreadCountInvariance(FilterKind::kEventNetwork);
}

TEST(Determinism, WindowNetworkMarksAreThreadCountInvariant) {
  ExpectThreadCountInvariance(FilterKind::kWindowNetwork);
}

TEST(Determinism, RngStreamsAreStableAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
  EXPECT_DOUBLE_EQ(Rng(7).Normal(), Rng(7).Normal());
  EXPECT_EQ(Rng(9).Permutation(20), Rng(9).Permutation(20));
}

}  // namespace
}  // namespace dlacep
