// Grammar-directed PQL fuzzing.
//
//  * FIXPOINT — random valid queries drawn from the PQL grammar parse,
//    re-render via Pattern::ToString(), re-parse, and re-render to the
//    identical string: ToString() is a fixpoint under parse∘render, so
//    the textual form is a faithful canonical serialization.
//
//  * ROBUSTNESS — random single-character mutations of valid queries
//    (deletions, insertions, replacements) either parse or return a
//    Status error; they never crash or corrupt state. The corpus is
//    bounded and deterministic, and the whole file runs under
//    ASan/UBSan in CI, so out-of-bounds reads in the lexer/parser
//    surface as hard failures.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "pattern/parser.h"
#include "stream/generator.h"

namespace dlacep {
namespace {

/// Deterministic generator over the documented PQL grammar. Only
/// schema-valid, structurally valid queries are produced: unique
/// variable names, declared types/attributes, KC bounds ordered, NEG
/// only between two positive positions, conditions only over plain
/// positive variables of a single branch.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    var_counter_ = 0;
    condition_vars_.clear();
    std::string node;
    switch (Pick(4)) {
      case 0:
        node = Seq();
        break;
      case 1:
        node = "CONJ(" + PrimList(2 + Pick(2)) + ")";
        break;
      case 2: {
        // DISJ of two SEQ branches; conditions stay inside branch 0.
        const std::string left = Seq();
        std::vector<std::string> saved = condition_vars_;
        const std::string right = Seq();
        condition_vars_ = std::move(saved);
        node = "DISJ(" + left + ", " + right + ")";
        break;
      }
      default:
        // Top-level Kleene over a short sequence (the Q^A_6 shape).
        // Its variables iterate, so no conditions reference them.
        node = "KC(" + Seq(/*allow_extras=*/false) + "){1.." +
               std::to_string(1 + Pick(2)) + "}";
        condition_vars_.clear();
        break;
    }
    std::string query;
    if (Pick(2) == 0) query += "PATTERN ";
    query += node;
    query += Where();
    query += Within();
    return query;
  }

 private:
  size_t Pick(size_t n) { return std::uniform_int_distribution<size_t>(
      0, n - 1)(rng_); }

  std::string Type() { return std::string(1, static_cast<char>('A' + Pick(6))); }
  std::string Attr() { return Pick(2) == 0 ? "vol" : "a1"; }

  std::string FreshVar() { return "v" + std::to_string(var_counter_++); }

  /// One primitive position; plain primitives register their variable
  /// as condition-eligible.
  std::string Prim(bool eligible = true) {
    const std::string var = FreshVar();
    std::string out;
    if (Pick(4) == 0) {
      const size_t n = 2 + Pick(3);
      const size_t start = Pick(6);
      out = "ANY(";
      for (size_t i = 0; i < n; ++i) {
        if (i > 0) out += ", ";
        out += std::string(1, static_cast<char>('A' + (start + i) % 6));
      }
      out += ") " + var;
    } else {
      out = Type() + " " + var;
    }
    if (eligible) condition_vars_.push_back(var);
    return out;
  }

  std::string PrimList(size_t n) {
    std::string out;
    for (size_t i = 0; i < n; ++i) {
      if (i > 0) out += ", ";
      out += Prim();
    }
    return out;
  }

  /// SEQ of 2..4 positions; interior slots may be KC or NEG wrapped
  /// (both keep a plain positive on each side).
  std::string Seq(bool allow_extras = true) {
    const size_t positions = 2 + Pick(3);
    std::string out = "SEQ(";
    for (size_t i = 0; i < positions; ++i) {
      if (i > 0) out += ", ";
      const bool interior = i > 0 && i + 1 < positions;
      if (allow_extras && interior && Pick(4) == 0) {
        const size_t lo = 1 + Pick(2);
        out += "KC(" + Prim(/*eligible=*/false) + "){" +
               std::to_string(lo) + ".." + std::to_string(lo + Pick(3)) +
               "}";
      } else if (allow_extras && interior && Pick(4) == 0) {
        out += "NEG(" + Prim(/*eligible=*/false) + ")";
      } else {
        out += Prim();
      }
    }
    out += ")";
    return out;
  }

  std::string Term(const std::string& var) {
    std::string out;
    if (Pick(3) == 0) {
      const double coef = 0.5 + 0.25 * static_cast<double>(Pick(7));
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g * ", coef);
      out += buf;
    }
    out += var + "." + Attr();
    if (Pick(4) == 0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, " + %g",
                    0.5 * static_cast<double>(1 + Pick(4)));
      out += buf;
    }
    return out;
  }

  std::string Where() {
    if (condition_vars_.size() < 2 || Pick(4) == 0) return "";
    const char* ops[] = {"<", "<=", ">", ">=", "==", "!="};
    std::string out = " WHERE ";
    const size_t clauses = 1 + Pick(2);
    for (size_t c = 0; c < clauses; ++c) {
      if (c > 0) out += Pick(3) == 0 ? " OR " : " AND ";
      const std::string& a = condition_vars_[Pick(condition_vars_.size())];
      const std::string& b = condition_vars_[Pick(condition_vars_.size())];
      out += Term(a) + " " + ops[Pick(6)] + " " + Term(b);
      if (Pick(4) == 0) {
        // Chained comparison, the paper's α·x < y < β·x notation.
        out += " < " +
               Term(condition_vars_[Pick(condition_vars_.size())]);
      }
    }
    return out;
  }

  std::string Within() {
    switch (Pick(3)) {
      case 0:
        return " WITHIN " + std::to_string(8 + Pick(50)) + " EVENTS";
      case 1: {
        char buf[32];
        std::snprintf(buf, sizeof buf, " WITHIN %g TIME",
                      2.0 + 0.5 * static_cast<double>(Pick(20)));
        return buf;
      }
      default:
        return "";  // default count window of 100
    }
  }

  std::mt19937_64 rng_;
  int var_counter_ = 0;
  std::vector<std::string> condition_vars_;
};

constexpr size_t kCorpusSize = 200;
constexpr size_t kMutationsPerQuery = 4;

TEST(PqlFuzz, GeneratedQueriesRoundTripToAFixpoint) {
  auto schema = MakeSyntheticSchema(6, 2);
  QueryGenerator gen(0xD1ACEF);
  size_t with_conditions = 0;
  for (size_t i = 0; i < kCorpusSize; ++i) {
    const std::string query = gen.Next();
    auto first = ParsePattern(query, schema);
    ASSERT_TRUE(first.ok()) << "generator produced an invalid query:\n"
                            << query << "\n"
                            << first.status().ToString();
    const std::string rendered = first.value().ToString();
    auto second = ParsePattern(rendered, schema);
    ASSERT_TRUE(second.ok())
        << "ToString() output is not re-parseable:\n  query:    " << query
        << "\n  rendered: " << rendered << "\n  "
        << second.status().ToString();
    EXPECT_EQ(second.value().ToString(), rendered)
        << "ToString() is not a fixpoint for:\n" << query;
    EXPECT_EQ(second.value().num_vars(), first.value().num_vars()) << query;
    EXPECT_EQ(second.value().conditions().size(),
              first.value().conditions().size())
        << query;
    EXPECT_EQ(second.value().window().kind, first.value().window().kind)
        << query;
    with_conditions += !first.value().conditions().empty();
  }
  // The corpus must actually exercise the WHERE grammar.
  EXPECT_GE(with_conditions, kCorpusSize / 10);
}

TEST(PqlFuzz, MutatedQueriesNeverCrash) {
  auto schema = MakeSyntheticSchema(6, 2);
  QueryGenerator gen(0xFADE);
  std::mt19937_64 rng(0xBEEF);
  const std::string charset = " ()<>.,*+-{}0123456789abvSEQ";
  size_t rejected = 0;
  size_t accepted = 0;
  for (size_t i = 0; i < kCorpusSize; ++i) {
    const std::string query = gen.Next();
    for (size_t m = 0; m < kMutationsPerQuery; ++m) {
      std::string mutated = query;
      const size_t kind = rng() % 3;
      const size_t at = rng() % mutated.size();
      if (kind == 0) {
        mutated.erase(at, 1);
      } else if (kind == 1) {
        mutated.insert(at, 1, charset[rng() % charset.size()]);
      } else {
        mutated[at] = charset[rng() % charset.size()];
      }
      // The only contract: a Status comes back, the process survives.
      auto result = ParsePattern(mutated, schema);
      if (result.ok()) {
        ++accepted;
        // Whatever parsed must still render and re-parse cleanly.
        EXPECT_TRUE(ParsePattern(result.value().ToString(), schema).ok())
            << mutated;
      } else {
        ++rejected;
        EXPECT_FALSE(result.status().ToString().empty());
      }
    }
  }
  // Single-character damage should usually be caught.
  EXPECT_GT(rejected, accepted);
}

}  // namespace
}  // namespace dlacep
