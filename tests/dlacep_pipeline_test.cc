// End-to-end and component tests of the DLACEP core: assembler coverage,
// featurizer encoding, labeler ground truth, the no-false-positives
// guarantee, oracle-filter recall, pass-through equivalence with ECEP,
// and trained-network pipelines on learnable patterns.

#include <gtest/gtest.h>

#include <map>

#include "cep/oracle.h"
#include "dlacep/acep.h"
#include "dlacep/analysis.h"
#include "dlacep/event_filter.h"
#include "dlacep/extractor.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "dlacep/window_filter.h"
#include "pattern/builder.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

std::span<const Event> SpanOf(const EventStream& stream) {
  return std::span<const Event>(stream.events().data(), stream.size());
}

Pattern TypeOnlySeq(std::shared_ptr<const Schema> schema, size_t window) {
  PatternBuilder builder(std::move(schema));
  auto root = builder.Seq(builder.Prim("A", "a"), builder.Prim("B", "b"),
                          builder.Prim("C", "c"));
  return builder.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

// ---------------------------------------------------------------------
// Assembler.

TEST(InputAssembler, PaperDefaultsCoverEveryWindowPosition) {
  const InputAssembler assembler = InputAssembler::ForWindow(10);
  EXPECT_EQ(assembler.mark_size(), 20u);
  EXPECT_EQ(assembler.step_size(), 10u);
  const auto windows = assembler.Windows(95);
  // Every consecutive run of 10 events must be fully inside some sample.
  for (size_t start = 0; start + 10 <= 95; ++start) {
    bool covered = false;
    for (const WindowRange& w : windows) {
      if (w.begin <= start && start + 10 <= w.end) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "window at " << start << " not covered";
  }
}

TEST(InputAssembler, WindowsAdvanceByStepAndCoverTail) {
  const InputAssembler assembler(8, 3);
  const auto windows = assembler.Windows(20);
  ASSERT_FALSE(windows.empty());
  EXPECT_EQ(windows.front().begin, 0u);
  for (size_t i = 1; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].begin, windows[i - 1].begin + 3);
  }
  EXPECT_EQ(windows.back().end, 20u);
}

TEST(InputAssembler, EmptyStreamYieldsNoWindows) {
  EXPECT_TRUE(InputAssembler(4, 2).Windows(0).empty());
}

// ---------------------------------------------------------------------
// Featurizer.

TEST(Featurizer, CompactsTypesAndStandardizesAttrs) {
  const EventStream stream = SmallStream(500, 71, /*num_types=*/5);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 10);
  const Featurizer featurizer(pattern, stream);
  // 3 referenced types + other + blank flag + 1 attribute.
  EXPECT_EQ(featurizer.num_type_slots(), 4u);
  EXPECT_EQ(featurizer.feature_dim(), 7u);

  const Matrix features = featurizer.Encode(stream.View(0, 100));
  EXPECT_EQ(features.rows(), 100u);
  // Each row: exactly one type slot hot, blank flag clear.
  for (size_t t = 0; t < 100; ++t) {
    double hot = 0.0;
    for (size_t s = 0; s < 4; ++s) hot += features(t, s);
    EXPECT_DOUBLE_EQ(hot, 1.0);
    EXPECT_DOUBLE_EQ(features(t, 4), 0.0);
  }
  // Standardized attr has ~zero mean on the fitting stream.
  const Matrix all = featurizer.Encode(SpanOf(stream));
  double mean = 0.0;
  for (size_t t = 0; t < all.rows(); ++t) mean += all(t, 5);
  mean /= static_cast<double>(all.rows());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(Featurizer, BlankEventsEncodeAsBlankFlag) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0.0, {1.0});
  stream.AppendBlank(1.0);
  PatternBuilder builder(schema);
  auto root = builder.Seq(builder.Prim("A", "a"), builder.Prim("B", "b"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(4));
  const Featurizer featurizer(pattern, stream);
  const Matrix features = featurizer.Encode(stream.View(0, 2));
  const size_t blank_col = featurizer.num_type_slots();
  EXPECT_DOUBLE_EQ(features(0, blank_col), 0.0);
  EXPECT_DOUBLE_EQ(features(1, blank_col), 1.0);
  for (size_t j = 0; j < features.cols(); ++j) {
    if (j != blank_col) {
      EXPECT_DOUBLE_EQ(features(1, j), 0.0);
    }
  }
}

// ---------------------------------------------------------------------
// Labeler.

TEST(SampleLabeler, LabelsExactlyTheMatchParticipants) {
  const EventStream stream = SmallStream(120, 72);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 8);
  const SampleLabeler labeler(pattern);
  const WindowRange range{10, 26};
  const LabeledSample sample = labeler.Label(stream, range);

  // Reference: run the independent oracle and collect participant ids.
  const MatchSet matches =
      EnumerateAllMatches(pattern, stream.View(range.begin, range.size()));
  std::set<EventId> participants;
  for (const Match& m : matches) {
    participants.insert(m.ids.begin(), m.ids.end());
  }
  EXPECT_EQ(sample.window_label, matches.empty() ? 0 : 1);
  EXPECT_EQ(sample.num_matches, matches.size());
  for (size_t t = 0; t < range.size(); ++t) {
    const EventId id = stream[range.begin + t].id;
    EXPECT_EQ(sample.event_labels[t], participants.count(id) > 0 ? 1 : 0)
        << "position " << t;
  }
}

TEST(SampleLabeler, NegationAwareLabelingMarksNegatedTypes) {
  const EventStream stream = SmallStream(60, 73);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"),
                          builder.Neg(builder.Prim("C", "nc")),
                          builder.Prim("B", "b"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(8));
  const SampleLabeler labeler(pattern);
  const LabeledSample sample = labeler.Label(stream, WindowRange{0, 30});
  for (size_t t = 0; t < 30; ++t) {
    if (stream[t].type == stream.schema().TypeIdOf("C").value()) {
      EXPECT_EQ(sample.event_labels[t], 1) << "negated type at " << t;
    }
  }
}

// ---------------------------------------------------------------------
// Pipeline with perfect-knowledge filters.

TEST(Pipeline, OracleFilterAchievesFullRecallAndNoFalsePositives) {
  const EventStream train = SmallStream(400, 74);
  const EventStream test = SmallStream(400, 75);
  const Pattern pattern = TypeOnlySeq(train.schema_ptr(), 8);

  DlacepConfig config;
  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kOracle, config);
  const ComparisonResult comparison =
      built.pipeline->CompareWithEcep(test);

  EXPECT_EQ(comparison.quality.recall, 1.0);
  EXPECT_EQ(comparison.quality.precision, 1.0);
  EXPECT_GT(comparison.exact_matches.size(), 0u);
  EXPECT_GT(comparison.dlacep.filtering_ratio(), 0.0);
}

TEST(Pipeline, PassThroughFilterReproducesEcepExactly) {
  const EventStream train = SmallStream(300, 76);
  const EventStream test = SmallStream(300, 77);
  const Pattern pattern = TypeOnlySeq(train.schema_ptr(), 10);

  DlacepConfig config;
  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kPassThrough, config);
  const ComparisonResult comparison =
      built.pipeline->CompareWithEcep(test);
  EXPECT_EQ(comparison.quality.recall, 1.0);
  EXPECT_EQ(comparison.quality.precision, 1.0);
  EXPECT_EQ(comparison.dlacep.filtering_ratio(), 0.0);
}

// Regression: marked_events used to be copied from
// cep_stats.events_processed, which is counted after the extractor
// drops blanks — a stream with blank (padding) events then over-reported
// the filtering ratio Ψ even though the filter relayed everything.
TEST(Pipeline, FilteringRatioCountsRelayedBlanks) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  for (int i = 0; i < 40; ++i) {
    if (i % 4 == 3) {
      stream.AppendBlank(static_cast<double>(i));
    } else {
      stream.Append(static_cast<TypeId>(i % 3), static_cast<double>(i),
                    {0.0});
    }
  }
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 8);
  DlacepConfig config;
  DlacepPipeline pipeline(pattern, std::make_unique<PassThroughFilter>(),
                          config);
  const PipelineResult result = pipeline.Evaluate(stream);

  // Pass-through relays every event, blanks included: Ψ measures
  // filtration, not what the engine later processed.
  EXPECT_EQ(result.marked_events, stream.size());
  EXPECT_EQ(result.filtering_ratio(), 0.0);
  // The extractor still drops the 10 blanks before the engine runs.
  EXPECT_EQ(result.cep_stats.events_processed, stream.size() - 10);
  // Overlapping assembler windows re-mark interior events: the raw mark
  // vector is longer than the deduplicated count.
  EXPECT_GT(result.marked_ids.size(), result.marked_events);
}

// Regression: with the default overlapping geometry (mark = 2w, step =
// w) the merge loop used to relay every covering window's copy of a
// marked event into the extractor feed — roughly doubling the
// extractor's input. The extractor sorts by id and drops duplicates
// before evaluating, so deduplicating at the merge changes neither the
// match set nor the engine work counters; this test feeds the
// historical duplicate-inclusive list to a reference extractor and
// checks the pipeline (deduped feed) agrees on all of it.
TEST(Pipeline, MergeDedupsExtractorInputWithoutChangingResults) {
  const EventStream stream = SmallStream(400, 78);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 8);
  DlacepConfig config;  // paper-default overlap: every interior event
                        // is covered by two windows
  DlacepPipeline pipeline(pattern, std::make_unique<PassThroughFilter>(),
                          config);
  const PipelineResult result = pipeline.Evaluate(stream);

  // The merged mark sequence stays duplicate-inclusive by contract —
  // only the extractor feed is deduplicated.
  ASSERT_GT(result.marked_ids.size(), result.marked_events);

  std::map<EventId, const Event*> by_id;
  for (const Event& e : stream.events()) by_id[e.id] = &e;
  std::vector<const Event*> duplicated;
  duplicated.reserve(result.marked_ids.size());
  for (const EventId id : result.marked_ids) {
    duplicated.push_back(by_id.at(id));
  }
  CepExtractor reference(pattern);
  MatchSet ref_matches;
  ASSERT_TRUE(reference.Extract(std::move(duplicated), &ref_matches).ok());

  EXPECT_EQ(result.matches.size(), ref_matches.size());
  EXPECT_EQ(result.matches.IntersectionSize(ref_matches),
            ref_matches.size());
  EXPECT_EQ(result.cep_stats.events_processed,
            reference.stats().events_processed);
  EXPECT_EQ(result.cep_stats.partial_matches,
            reference.stats().partial_matches);
}

// Micro-batched filtration (config.batch_size > 1) must reproduce the
// per-window path byte for byte, at every thread count: batch chunk
// boundaries depend only on batch_size, never on the worker count.
TEST(Pipeline, BatchedEvaluateMatchesPerWindowAcrossThreads) {
  const EventStream train = SmallStream(600, 79);
  const EventStream test = SmallStream(400, 80);
  const Pattern pattern = TypeOnlySeq(train.schema_ptr(), 8);

  DlacepConfig base;
  base.network.hidden_dim = 8;
  base.network.num_layers = 1;
  base.train.max_epochs = 2;

  auto run = [&](size_t batch_size, size_t threads) {
    DlacepConfig config = base;  // seeded: retraining is deterministic
    config.batch_size = batch_size;
    config.num_threads = threads;
    BuiltDlacep built =
        BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
    return built.pipeline->Evaluate(test);
  };

  const PipelineResult ref = run(1, 1);
  for (size_t threads : {1u, 4u}) {
    for (size_t batch_size : {3u, 8u}) {
      const PipelineResult got = run(batch_size, threads);
      EXPECT_EQ(got.marked_ids, ref.marked_ids)
          << "batch_size=" << batch_size << " threads=" << threads;
      EXPECT_EQ(got.marked_events, ref.marked_events)
          << "batch_size=" << batch_size << " threads=" << threads;
      EXPECT_EQ(got.matches.size(), ref.matches.size());
      EXPECT_EQ(got.matches.IntersectionSize(ref.matches),
                ref.matches.size());
    }
  }
}

// Property: for NEG-free patterns DLACEP can never invent a match,
// whatever the filter marks (here: adversarial random marks).
class RandomMarkFilter : public StreamFilter {
 public:
  explicit RandomMarkFilter(uint64_t seed) : seed_(seed) {}
  std::string name() const override { return "random"; }
  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    // Per-window generator: Mark must be re-entrant (see filter.h).
    Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL *
                     (static_cast<uint64_t>(range.begin) + 1)));
    std::vector<int> marks(range.size());
    for (auto& m : marks) m = rng.Bernoulli(0.5) ? 1 : 0;
    return marks;
  }

 private:
  uint64_t seed_;
};

class NoFalsePositives : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NoFalsePositives, RandomMarksAreSubsetOfExact) {
  const EventStream stream = SmallStream(250, GetParam());
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 9);
  DlacepConfig config;
  DlacepPipeline pipeline(
      pattern, std::make_unique<RandomMarkFilter>(GetParam()), config);
  const PipelineResult result = pipeline.Evaluate(stream);
  const MatchSet exact = EnumerateAllMatches(pattern, SpanOf(stream));
  for (const Match& m : result.matches) {
    EXPECT_TRUE(exact.Contains(m)) << "false positive " << m.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoFalsePositives,
                         ::testing::Values(uint64_t{81}, uint64_t{82},
                                           uint64_t{83}, uint64_t{84},
                                           uint64_t{85}));

// ---------------------------------------------------------------------
// Trained-network pipelines on a type-separable pattern.

TEST(Pipeline, TrainedEventNetworkReachesHighRecall) {
  const EventStream train = SmallStream(2500, 91);
  const EventStream test = SmallStream(600, 92);
  const Pattern pattern = TypeOnlySeq(train.schema_ptr(), 8);

  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 50;

  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
  EXPECT_GT(built.test_metrics.f1(), 0.7)
      << "P=" << built.test_metrics.precision()
      << " R=" << built.test_metrics.recall();

  const ComparisonResult comparison =
      built.pipeline->CompareWithEcep(test);
  EXPECT_GT(comparison.quality.recall, 0.6);
  EXPECT_EQ(comparison.quality.precision, 1.0);  // NEG-free: subset
}

TEST(Pipeline, TrainedWindowNetworkMarksWholeWindows) {
  const EventStream train = SmallStream(2500, 93, /*num_types=*/8);
  const EventStream test = SmallStream(600, 94, /*num_types=*/8);
  // SEQ over rare types: many windows are inapplicable, so the window
  // network has something to filter.
  PatternBuilder builder(train.schema_ptr());
  auto root = builder.Seq(builder.Prim("G", "g"), builder.Prim("H", "h"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(6));

  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 40;

  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kWindowNetwork, config);
  const ComparisonResult comparison =
      built.pipeline->CompareWithEcep(test);
  EXPECT_GT(comparison.quality.recall, 0.8);
  EXPECT_EQ(comparison.quality.precision, 1.0);
}

// ---------------------------------------------------------------------
// ACEP formal artifacts.

TEST(AcepModel, PhiMatchesHandComputedValue) {
  // Two positions, rates 0.1 and 0.2, selectivity 0.5 between them,
  // unary selectivities 1: Φ = W·0.1 + W²·0.1·0.2·0.5.
  const std::vector<double> rates = {0.1, 0.2};
  std::vector<std::vector<double>> sel(2, std::vector<double>(2, 1.0));
  sel[0][1] = sel[1][0] = 0.5;
  const double phi = PhiExpectedPartialMatches(10, rates, sel);
  EXPECT_NEAR(phi, 10 * 0.1 + 100 * 0.1 * 0.2 * 0.5, 1e-12);
}

TEST(AcepModel, FilteringReducesPredictedCost) {
  const EventStream stream = SmallStream(400, 95);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 12);
  auto plans = CompilePlans(pattern);
  ASSERT_TRUE(plans.ok());
  const LinearPlan& plan = plans.value()[0];
  const double ecep = EstimateEcepCost(plan, SpanOf(stream), 12, 7);
  const double acep = EstimateAcepCost(plan, SpanOf(stream), 12,
                                       {0.2, 0.2, 0.2}, /*filter=*/1.0, 7);
  EXPECT_GT(ecep, 0.0);
  EXPECT_LT(acep - 1.0, ecep);  // filtered Φ strictly below unfiltered
}

TEST(AcepModel, ObjectivePrefersBetterSystems) {
  MatchSet exact;
  exact.Insert(Match({1, 2}));
  exact.Insert(Match({3, 4}));
  MatchSet perfect = exact;
  MatchSet partial;
  partial.Insert(Match({1, 2}));
  const double good = AcepObjective(exact, perfect, 10.0, 0.5, 0.5);
  const double bad = AcepObjective(exact, partial, 10.0, 0.5, 0.5);
  EXPECT_LT(good, bad);
}

// ---------------------------------------------------------------------
// Qualitative analysis.

TEST(Analysis, VarianceSummarySeparatesDetectedFromMissed) {
  const EventStream stream = SmallStream(200, 96);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 10);
  const MatchSet exact = EnumerateAllMatches(pattern, SpanOf(stream));
  ASSERT_GT(exact.size(), 4u);

  // Miss exactly the highest-variance half.
  std::vector<std::pair<double, Match>> scored;
  for (const Match& m : exact) {
    scored.emplace_back(MatchAttrVariance(m, stream, 0), m);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  MatchSet approx;
  for (size_t i = 0; i < scored.size() / 2; ++i) {
    approx.Insert(scored[i].second);
  }

  const VarianceSummary summary =
      SummarizeVariance(exact, approx, stream, 0);
  EXPECT_GT(summary.undetected_mean, summary.detected_mean);
  EXPECT_EQ(summary.detected_count + summary.undetected_count,
            exact.size());

  const auto buckets = VarianceDistribution(exact, approx, stream, 0, 5);
  size_t total = 0;
  for (const auto& bucket : buckets) {
    total += bucket.detected + bucket.undetected;
  }
  EXPECT_EQ(total, exact.size());
}

}  // namespace
}  // namespace dlacep
