// Online streaming runtime tests: the byte-equality contract between
// OnlineDlacep and the batch DlacepPipeline, bounded-queue accounting
// under overload (no deadlock, every ingested event is either relayed,
// filtered, or dropped), overload controller escalation AND recovery,
// drift flagging, source fidelity, and RingQueue unit behavior. The
// whole file must also pass under TSan (see the CI sanitizer job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "dlacep/event_filter.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "dlacep/shedding_filter.h"
#include "pattern/builder.h"
#include "runtime/online.h"
#include "runtime/ring_queue.h"
#include "runtime/source.h"
#include "stream/stocksim.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

void ExpectSameMatches(const MatchSet& a, const MatchSet& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.IntersectionSize(b), a.size());
}

// ---------------------------------------------------------------------
// RingQueue.

TEST(RingQueue, FifoOrderAndHighWater) {
  RingQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_water(), 3u);
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(queue.TryPush(4));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 4);
  EXPECT_EQ(queue.high_water(), 3u);  // depth never exceeded 3
}

TEST(RingQueue, TryPushFailsWhenFull) {
  RingQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.TryPush(3));
}

TEST(RingQueue, CloseDrainsRemainingThenStops) {
  RingQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_TRUE(queue.TryPush(8));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(9));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 8);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(RingQueue, BlockingPushDeliversEverythingThroughTinyQueue) {
  RingQueue<int> queue(2);
  constexpr int kCount = 500;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) ASSERT_TRUE(queue.Push(i));
    queue.Close();
  });
  int expected = 0;
  int out = -1;
  while (queue.Pop(&out)) {
    EXPECT_EQ(out, expected++);
  }
  EXPECT_EQ(expected, kCount);
  producer.join();
}

TEST(RingQueue, CloseUnblocksPendingPush) {
  RingQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = queue.Push(2); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

// ---------------------------------------------------------------------
// LatencyHistogram.

// The linear scan Record() historically ran per sample — the definition
// of bucket placement. The O(1) BucketFor must agree with it
// everywhere, most importantly exactly on bucket bounds, where the
// bit-width guess needs its adjust loops (1µs·2^i is not exactly
// representable in binary floating point).
size_t LinearScanBucket(double seconds) {
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    if (seconds <= LatencyHistogram::BucketBound(i)) return i;
  }
  return LatencyHistogram::kBuckets - 1;
}

TEST(LatencyHistogram, BucketForMatchesLinearScanEverywhere) {
  EXPECT_EQ(LatencyHistogram::BucketFor(0.0), LinearScanBucket(0.0));
  EXPECT_EQ(LatencyHistogram::BucketFor(-1.0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketFor(1e9),
            LatencyHistogram::kBuckets - 1);
  EXPECT_EQ(LatencyHistogram::BucketFor(1e300),
            LatencyHistogram::kBuckets - 1);
  for (size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
    const double bound = LatencyHistogram::BucketBound(i);
    const double probes[] = {bound,
                             std::nextafter(bound, 0.0),
                             std::nextafter(bound, 1e18),
                             bound * 0.75,
                             bound * 1.5};
    for (double s : probes) {
      EXPECT_EQ(LatencyHistogram::BucketFor(s), LinearScanBucket(s))
          << "bucket " << i << " s=" << s;
    }
  }
}

TEST(LatencyHistogram, PercentileUsesCeilNearestRank) {
  LatencyHistogram h;
  h.Record(1.5e-6);  // one fast sample
  for (int i = 0; i < 99; ++i) h.Record(0.9);  // 99 slow ones
  const double fast =
      LatencyHistogram::BucketBound(LatencyHistogram::BucketFor(1.5e-6));
  const double slow =
      LatencyHistogram::BucketBound(LatencyHistogram::BucketFor(0.9));
  // Nearest rank of p=1% over 100 samples is ceil(1) = 1 — the single
  // fast sample. The old round-half-up arithmetic produced rank 0 and
  // walked off the front of the histogram.
  EXPECT_EQ(h.Percentile(1.0), fast);
  EXPECT_EQ(h.Percentile(0.0), fast);    // clamped to rank 1
  EXPECT_EQ(h.Percentile(1.001), slow);  // ceil rounds up to rank 2
  EXPECT_EQ(h.Percentile(50.0), slow);
  EXPECT_EQ(h.Percentile(100.0), slow);
  EXPECT_EQ(h.Percentile(200.0), slow);  // out-of-range p clamps
}

TEST(LatencyHistogram, PercentileSkipsEmptyBuckets) {
  LatencyHistogram h;
  h.Record(1e-6);  // bucket 0
  h.Record(1.0);   // a high bucket; everything in between stays empty
  const double fast = LatencyHistogram::BucketBound(0);
  const double slow =
      LatencyHistogram::BucketBound(LatencyHistogram::BucketFor(1.0));
  EXPECT_EQ(h.Percentile(50.0), fast);  // rank 1 of 2
  EXPECT_EQ(h.Percentile(51.0), slow);  // rank 2 of 2
  // Every answer must be a non-empty bucket's bound — never one of the
  // empty buckets between the two samples.
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_TRUE(v == fast || v == slow) << "p=" << p << " -> " << v;
  }
}

TEST(LatencyHistogram, PercentileOfEmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.0), 0.0);
  EXPECT_EQ(h.Percentile(50.0), 0.0);
  EXPECT_EQ(h.Percentile(100.0), 0.0);
}

// ---------------------------------------------------------------------
// Byte-equality with the batch pipeline (the tentpole contract).

struct EqualityCase {
  const EventStream* stream;
  const Pattern* pattern;
  const StreamFilter* filter;
  size_t mark_size = 0;
  size_t step_size = 0;
};

// Runs the online runtime at several thread counts and checks marks,
// relayed-event counts, and matches against the batch pipeline result.
void CheckOnlineMatchesBatch(const EqualityCase& c,
                             const PipelineResult& batch) {
  for (size_t threads : {1u, 2u, 4u}) {
    OnlineConfig config;
    config.num_threads = threads;
    config.queue_capacity = 64;
    config.mark_size = c.mark_size;
    config.step_size = c.step_size;
    config.overload.enabled = false;  // lossless backpressure only
    OnlineDlacep online(*c.pattern, c.filter, config);
    ReplaySource source(c.stream);
    const OnlineResult result = online.Run(&source);

    EXPECT_EQ(result.marked_ids, batch.marked_ids)
        << "threads=" << threads;
    EXPECT_EQ(result.marked_events, batch.marked_events)
        << "threads=" << threads;
    ExpectSameMatches(result.matches, batch.matches);

    EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
    EXPECT_EQ(result.stats.events_ingested, c.stream->size());
    EXPECT_EQ(result.stats.events_dropped_queue, 0u);
    EXPECT_EQ(result.stats.overload_escalations, 0u);
    EXPECT_EQ(result.stats.overload_level_at_exit, 0);
  }
}

PipelineResult BatchReference(const EqualityCase& c,
                              std::unique_ptr<StreamFilter> filter) {
  DlacepConfig config;
  config.num_threads = 1;
  config.mark_size = c.mark_size;
  config.step_size = c.step_size;
  DlacepPipeline pipeline(*c.pattern, std::move(filter), config);
  return pipeline.Evaluate(*c.stream);
}

TEST(OnlineEquality, PassThroughFilter) {
  const EventStream stream = SmallStream(600, 11);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 12);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter};
  CheckOnlineMatchesBatch(c,
                          BatchReference(c, std::make_unique<PassThroughFilter>()));
}

TEST(OnlineEquality, TypeSheddingFilter) {
  const EventStream stream = SmallStream(800, 23, /*num_types=*/6);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 10);
  TypeSheddingFilter filter(pattern);
  EqualityCase c{&stream, &pattern, &filter};
  CheckOnlineMatchesBatch(
      c, BatchReference(c, std::make_unique<TypeSheddingFilter>(pattern)));
}

TEST(OnlineEquality, RandomSheddingFilterKeepsWindowSalt) {
  const EventStream stream = SmallStream(700, 37);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  RandomSheddingFilter filter(0.4, 99);
  EqualityCase c{&stream, &pattern, &filter};
  CheckOnlineMatchesBatch(
      c, BatchReference(c, std::make_unique<RandomSheddingFilter>(0.4, 99)));
}

TEST(OnlineEquality, OracleFilter) {
  const EventStream stream = SmallStream(400, 51);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  OracleFilter filter(pattern);
  EqualityCase c{&stream, &pattern, &filter};
  CheckOnlineMatchesBatch(
      c, BatchReference(c, std::make_unique<OracleFilter>(pattern)));
}

TEST(OnlineEquality, TrainedEventNetworkFilter) {
  const EventStream train = SmallStream(900, 61);
  const EventStream test = SmallStream(500, 62);
  const Pattern pattern = AscendingSeqPattern(train.schema_ptr(), 2, 8);

  DlacepConfig config;
  config.network.hidden_dim = 6;
  config.network.num_layers = 1;
  config.train.max_epochs = 2;
  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
  const PipelineResult batch = built.pipeline->Evaluate(test);

  // The pipeline owns the trained filter; borrow it for the online run.
  EqualityCase c{&test, &pattern, &built.pipeline->filter()};
  CheckOnlineMatchesBatch(c, batch);
}

TEST(OnlineEquality, NonDefaultAssemblerGeometry) {
  const EventStream stream = SmallStream(300, 71);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 7);
  PassThroughFilter filter;
  // mark not a multiple of step, truncated tail windows.
  EqualityCase c{&stream, &pattern, &filter, /*mark_size=*/11,
                 /*step_size=*/4};
  CheckOnlineMatchesBatch(
      c, BatchReference(c, std::make_unique<PassThroughFilter>()));
}

TEST(OnlineEquality, StreamShorterThanOneWindow) {
  const EventStream full = SmallStream(200, 81);
  const EventStream stream = full.Slice(0, 5);  // N << mark_size
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 30);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter};
  CheckOnlineMatchesBatch(
      c, BatchReference(c, std::make_unique<PassThroughFilter>()));
}

TEST(OnlineEquality, EmptyStream) {
  const EventStream full = SmallStream(10, 91);
  const EventStream stream = full.Slice(0, 0);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter filter;
  OnlineConfig config;
  config.overload.enabled = false;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  const OnlineResult result = online.Run(&source);
  EXPECT_TRUE(result.matches.empty());
  EXPECT_TRUE(result.marked_ids.empty());
  EXPECT_EQ(result.stats.windows_closed, 0u);
  EXPECT_TRUE(result.stats.Accounted());
}

// ---------------------------------------------------------------------
// Micro-batched filtration (batch_size > 1): the batch-collection stage
// may only delay WHEN a window is marked, never change its marks or its
// merge position, so every (threads × batch_size) cell must stay
// byte-identical to the per-window batch pipeline.

void CheckOnlineBatchedMatchesBatch(const EqualityCase& c,
                                    const PipelineResult& batch) {
  for (size_t threads : {1u, 2u, 4u}) {
    for (size_t batch_size : {2u, 4u, 7u}) {
      OnlineConfig config;
      config.num_threads = threads;
      config.queue_capacity = 64;
      config.mark_size = c.mark_size;
      config.step_size = c.step_size;
      config.overload.enabled = false;
      config.batch_size = batch_size;
      // Generous timeout: with an unthrottled ReplaySource batches fill
      // before the timer can split them.
      config.batch_timeout_ms = 250.0;
      OnlineDlacep online(*c.pattern, c.filter, config);
      ReplaySource source(c.stream);
      const OnlineResult result = online.Run(&source);

      EXPECT_EQ(result.marked_ids, batch.marked_ids)
          << "threads=" << threads << " batch_size=" << batch_size;
      EXPECT_EQ(result.marked_events, batch.marked_events)
          << "threads=" << threads << " batch_size=" << batch_size;
      ExpectSameMatches(result.matches, batch.matches);
      EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
      EXPECT_EQ(result.stats.events_dropped_queue, 0u);
      EXPECT_EQ(result.stats.overload_escalations, 0u);
    }
  }
}

TEST(OnlineBatching, PassThroughFilterMatchesBatchPipeline) {
  const EventStream stream = SmallStream(600, 11);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 12);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter};
  CheckOnlineBatchedMatchesBatch(
      c, BatchReference(c, std::make_unique<PassThroughFilter>()));
}

TEST(OnlineBatching, TrainedEventNetworkFilterMatchesBatchPipeline) {
  const EventStream train = SmallStream(900, 61);
  const EventStream test = SmallStream(500, 62);
  const Pattern pattern = AscendingSeqPattern(train.schema_ptr(), 2, 8);

  DlacepConfig config;
  config.network.hidden_dim = 6;
  config.network.num_layers = 1;
  config.train.max_epochs = 2;
  BuiltDlacep built =
      BuildDlacep(pattern, train, FilterKind::kEventNetwork, config);
  const PipelineResult batch = built.pipeline->Evaluate(test);

  EqualityCase c{&test, &pattern, &built.pipeline->filter()};
  CheckOnlineBatchedMatchesBatch(c, batch);
}

TEST(OnlineBatching, PartialBatchFlushesAtEndOfStream) {
  const EventStream stream = SmallStream(300, 71);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 7);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter, /*mark_size=*/11,
                 /*step_size=*/4};
  const PipelineResult batch =
      BatchReference(c, std::make_unique<PassThroughFilter>());

  // batch_size larger than the whole window count and the flush timer
  // disabled: nothing can dispatch until merge pressure / end of stream
  // forces it. The run must still terminate and match byte for byte.
  OnlineConfig config;
  config.mark_size = c.mark_size;
  config.step_size = c.step_size;
  config.overload.enabled = false;
  config.batch_size = 1000;
  config.batch_timeout_ms = 0.0;
  for (size_t threads : {1u, 4u}) {
    config.num_threads = threads;
    OnlineDlacep online(pattern, &filter, config);
    ReplaySource source(&stream);
    const OnlineResult result = online.Run(&source);
    EXPECT_EQ(result.marked_ids, batch.marked_ids) << "threads=" << threads;
    ExpectSameMatches(result.matches, batch.matches);
    EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
  }
}

TEST(OnlineBatching, TimeoutFlushesPartialBatchInMergeOrder) {
  const EventStream stream = SmallStream(240, 81);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter filter;
  EqualityCase c{&stream, &pattern, &filter};
  const PipelineResult batch =
      BatchReference(c, std::make_unique<PassThroughFilter>());

  // Throttle the source so windows close slower than the flush timer:
  // every batch is flushed by timeout while partial, which exercises the
  // timed-pop path without changing any result (flush timing only picks
  // the grouping; merge order is pinned by dispatch sequence).
  OnlineConfig config;
  config.num_threads = 2;
  config.overload.enabled = false;
  config.batch_size = 8;
  config.batch_timeout_ms = 1.0;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream, /*events_per_second=*/4000.0);
  const OnlineResult result = online.Run(&source);
  EXPECT_EQ(result.marked_ids, batch.marked_ids);
  EXPECT_EQ(result.marked_events, batch.marked_events);
  ExpectSameMatches(result.matches, batch.matches);
  EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
}

// ---------------------------------------------------------------------
// Sources.

TEST(StockSimSource, ByteIdenticalToBatchGeneration) {
  StockSimConfig config;
  config.num_events = 500;
  config.num_symbols = 8;
  config.seed = 13;
  const EventStream batch = GenerateStockStream(config);

  StockSimSource source(config);
  Event event;
  size_t i = 0;
  while (source.Next(&event)) {
    ASSERT_LT(i, batch.size());
    EXPECT_EQ(event.type, batch[i].type);
    EXPECT_EQ(event.timestamp, batch[i].timestamp);
    ASSERT_EQ(event.attrs.size(), batch[i].attrs.size());
    for (size_t a = 0; a < event.attrs.size(); ++a) {
      EXPECT_EQ(event.attrs[a], batch[i].attrs[a]);
    }
    ++i;
  }
  EXPECT_EQ(i, batch.size());
}

// ---------------------------------------------------------------------
// Overload control and accounting above capacity.

/// Pass-through whose first `slow_calls` markings sleep, creating a
/// deterministic overload phase followed by guaranteed relief.
class SlowThenFastFilter : public StreamFilter {
 public:
  SlowThenFastFilter(int slow_calls, std::chrono::milliseconds delay)
      : remaining_(slow_calls), delay_(delay) {}

  std::string name() const override { return "slow-then-fast"; }

  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    if (remaining_.fetch_sub(1) > 0) std::this_thread::sleep_for(delay_);
    return std::vector<int>(range.size(), 1);
  }

 private:
  mutable std::atomic<int> remaining_;
  std::chrono::milliseconds delay_;
};

/// Replays a burst of events as fast as possible (far above capacity),
/// then paces the remaining tail at a rate the consumer can keep up
/// with — so an overloaded phase is followed by guaranteed relief.
class BurstThenPacedSource : public StreamSource {
 public:
  BurstThenPacedSource(const EventStream* stream, size_t burst,
                       double tail_rate)
      : stream_(stream), burst_(burst), pacer_(tail_rate) {}

  std::shared_ptr<const Schema> schema() const override {
    return stream_->schema_ptr();
  }

  Status Read(Event* out) override {
    if (next_ >= stream_->size()) {
      return Status::OutOfRange("end of stream");
    }
    if (next_ >= burst_) pacer_.Tick();
    *out = (*stream_)[next_++];
    return Status::Ok();
  }

 private:
  const EventStream* stream_;
  size_t burst_;
  size_t next_ = 0;
  Pacer pacer_;
};

TEST(OnlineOverload, EscalatesRecoversAndAccountsEveryEvent) {
  const EventStream stream = SmallStream(3500, 17);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  // While the primary filter is slow, window closes are gated on merges
  // and the queue stays full at every close (pressure); once the slow
  // calls are spent, the consumer outpaces the paced tail and the queue
  // is empty at every close (relief).
  SlowThenFastFilter filter(/*slow_calls=*/6,
                            std::chrono::milliseconds(60));

  OnlineConfig config;
  config.queue_capacity = 8;
  config.drop_when_full = true;  // above capacity: count drops
  config.num_threads = 2;
  config.max_windows_in_flight = 2;
  config.overload.enabled = true;
  config.overload.high_watermark = 0.5;
  config.overload.low_watermark = 0.25;
  config.overload.dwell_windows = 1;
  config.overload.shedding = SheddingPolicy::kType;
  OnlineDlacep online(pattern, &filter, config);

  BurstThenPacedSource source(&stream, /*burst=*/2000,
                              /*tail_rate=*/4000.0);
  const OnlineResult result = online.Run(&source);
  const RuntimeStats& stats = result.stats;

  // No deadlock (we got here) and exact accounting despite drops.
  EXPECT_EQ(stats.events_ingested, stream.size());
  EXPECT_GT(stats.events_dropped_queue, 0u);
  EXPECT_TRUE(stats.Accounted()) << stats.ToString();
  EXPECT_EQ(stats.events_appended + stats.events_dropped_queue,
            stats.events_ingested);

  // The controller went INTO degraded mode and came back OUT.
  EXPECT_GE(stats.overload_escalations, 1u);
  EXPECT_GE(stats.overload_recoveries, 1u);
  EXPECT_EQ(stats.overload_level_at_exit, 0);
  ASSERT_FALSE(stats.transitions.empty());
  for (const OverloadTransition& t : stats.transitions) {
    EXPECT_EQ(std::abs(t.to - t.from), 1);  // one level at a time
    EXPECT_GE(t.to, 0);
    EXPECT_LE(t.to, OverloadController::kMaxLevel);
  }

  EXPECT_GT(stats.windows_closed, 0u);
  EXPECT_EQ(stats.window_latency.count(), stats.windows_closed);
}

TEST(OverloadController, HysteresisEscalatesAndRecoversOneLevelAtATime) {
  OverloadConfig config;
  config.high_watermark = 0.8;
  config.low_watermark = 0.25;
  config.dwell_windows = 3;
  OverloadController controller(config);

  // Pressure must persist for dwell_windows closes before a transition.
  EXPECT_EQ(controller.Observe(0.9, 0.0), 0);
  EXPECT_EQ(controller.Observe(0.9, 0.0), 0);
  EXPECT_EQ(controller.Observe(0.1, 0.0), 0);  // run broken, re-arm
  EXPECT_EQ(controller.Observe(0.9, 0.0), 0);
  EXPECT_EQ(controller.Observe(0.9, 0.0), 0);
  EXPECT_EQ(controller.Observe(0.9, 0.0), 1);  // 3rd consecutive
  // One level at a time: the next dwell run reaches level 2.
  EXPECT_EQ(controller.Observe(0.9, 0.0), 1);
  EXPECT_EQ(controller.Observe(0.9, 0.0), 1);
  EXPECT_EQ(controller.Observe(0.9, 0.0), 2);
  // Saturates at kMaxLevel.
  EXPECT_EQ(controller.Observe(1.0, 0.0), 2);
  EXPECT_EQ(controller.Observe(1.0, 0.0), 2);
  EXPECT_EQ(controller.Observe(1.0, 0.0), 2);
  // Mid-band (between watermarks) neither escalates nor recovers.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(controller.Observe(0.5, 0.0), 2);
  // Relief below the low watermark recovers, again one level per dwell.
  EXPECT_EQ(controller.Observe(0.1, 0.0), 2);
  EXPECT_EQ(controller.Observe(0.1, 0.0), 2);
  EXPECT_EQ(controller.Observe(0.1, 0.0), 1);
  EXPECT_EQ(controller.Observe(0.1, 0.0), 1);
  EXPECT_EQ(controller.Observe(0.1, 0.0), 1);
  EXPECT_EQ(controller.Observe(0.1, 0.0), 0);

  EXPECT_EQ(controller.escalations(), 2u);
  EXPECT_EQ(controller.recoveries(), 2u);
  ASSERT_EQ(controller.transitions().size(), 4u);
  EXPECT_EQ(controller.transitions()[0].to, 1);
  EXPECT_EQ(controller.transitions()[1].to, 2);
  EXPECT_EQ(controller.transitions()[2].to, 1);
  EXPECT_EQ(controller.transitions()[3].to, 0);
}

TEST(OverloadController, LatencySignalTriggersWithoutQueuePressure) {
  OverloadConfig config;
  config.latency_high_seconds = 0.5;
  config.dwell_windows = 2;
  OverloadController controller(config);
  EXPECT_EQ(controller.Observe(0.0, 1.0), 0);
  EXPECT_EQ(controller.Observe(0.0, 1.0), 1);
  // Recovery needs BOTH an empty-ish queue and latency well below the
  // trip point.
  EXPECT_EQ(controller.Observe(0.0, 0.6), 1);
  EXPECT_EQ(controller.Observe(0.0, 0.1), 1);
  EXPECT_EQ(controller.Observe(0.0, 0.1), 0);
}

// ---------------------------------------------------------------------
// Latency-EWMA warm-up: one slow first window must not escalate.

/// Sleeps while marking windows with seq < slow_before — a warm-up
/// outlier (seq 0 only) or sustained slowness (several windows).
class SlowSeqFilter : public StreamFilter {
 public:
  SlowSeqFilter(std::atomic<uint64_t>* seq_counter, uint64_t slow_before,
                std::chrono::milliseconds delay)
      : seq_(seq_counter), slow_before_(slow_before), delay_(delay) {}

  std::string name() const override { return "slow-seq"; }

  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    if (seq_->fetch_add(1) < slow_before_) {
      std::this_thread::sleep_for(delay_);
    }
    return std::vector<int>(range.size(), 1);
  }

 private:
  std::atomic<uint64_t>* seq_;
  uint64_t slow_before_;
  std::chrono::milliseconds delay_;
};

// Latency-signal-only config: the queue can never signal pressure
// (high_watermark above any possible fill fraction), so escalations in
// these tests come from the window-latency EWMA alone.
OnlineConfig LatencySignalOnlyConfig() {
  OnlineConfig config;
  config.num_threads = 1;  // in-order inline marking: window latencies
                           // are exactly the per-window mark costs
  config.overload.enabled = true;
  config.overload.high_watermark = 2.0;
  config.overload.latency_high_seconds = 0.05;
  config.overload.dwell_windows = 1;
  return config;
}

TEST(OnlineOverload, SingleSlowWarmupWindowDoesNotEscalate) {
  const EventStream stream = SmallStream(600, 67);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  // Only window 0 is slow (250ms >> the 50ms trip point): the classic
  // cold-cache warm-up outlier. Before the warm-up discard the EWMA
  // seeded from this first observation and, with dwell_windows=1, fired
  // a spurious escalation a healthy steady state then had to undo.
  std::atomic<uint64_t> seq{0};
  SlowSeqFilter filter(&seq, /*slow_before=*/1,
                       std::chrono::milliseconds(250));
  OnlineConfig config = LatencySignalOnlyConfig();
  ASSERT_EQ(config.overload.latency_warmup_windows, 1u);  // the default
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  const OnlineResult result = online.Run(&source);

  EXPECT_EQ(result.stats.overload_escalations, 0u)
      << "a single warm-up outlier seeded the latency EWMA";
  EXPECT_EQ(result.stats.overload_level_at_exit, 0);
  EXPECT_TRUE(result.stats.transitions.empty());
  EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
}

TEST(OnlineOverload, SustainedSlownessStillEscalatesPastWarmup) {
  const EventStream stream = SmallStream(600, 71);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  // Six consecutive slow windows: the warm-up discard skips only the
  // first, so the EWMA seeds from window 1 and the latency signal must
  // still fire — the fix ignores one outlier, not the signal.
  std::atomic<uint64_t> seq{0};
  SlowSeqFilter filter(&seq, /*slow_before=*/6,
                       std::chrono::milliseconds(100));
  OnlineDlacep online(pattern, &filter, LatencySignalOnlyConfig());
  ReplaySource source(&stream);
  const OnlineResult result = online.Run(&source);

  EXPECT_GE(result.stats.overload_escalations, 1u);
  EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
}

TEST(OnlineOverload, DisabledControllerStaysLossyButLevelZero) {
  const EventStream stream = SmallStream(2000, 19);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  SlowThenFastFilter filter(/*slow_calls=*/3,
                            std::chrono::milliseconds(40));

  OnlineConfig config;
  config.queue_capacity = 8;
  config.drop_when_full = true;
  config.num_threads = 1;
  config.max_windows_in_flight = 1;
  config.overload.enabled = false;
  OnlineDlacep online(pattern, &filter, config);

  ReplaySource source(&stream);
  const OnlineResult result = online.Run(&source);
  EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
  EXPECT_GT(result.stats.events_dropped_queue, 0u);
  EXPECT_EQ(result.stats.overload_escalations, 0u);
  EXPECT_EQ(result.stats.windows_shed, 0u);
  EXPECT_EQ(result.stats.windows_boosted, 0u);
}

// ---------------------------------------------------------------------
// Drift monitoring inside the runtime loop.

TEST(OnlineDrift, FlagsWhenLiveRateLeavesReferenceBand) {
  const EventStream stream = SmallStream(800, 29);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter filter;  // live marking rate is exactly 1.0

  OnlineConfig config;
  config.overload.enabled = false;
  config.drift.enabled = true;
  config.drift.reference_rate = 0.0;  // trained reference: nothing marked
  config.drift.tolerance = 0.1;
  config.drift.window_budget = 4;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  EXPECT_GE(online.Run(&source).stats.drift_flags, 1u);
}

TEST(OnlineDrift, QuietWhenRateMatchesReference) {
  const EventStream stream = SmallStream(800, 31);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter filter;

  OnlineConfig config;
  config.overload.enabled = false;
  config.drift.enabled = true;
  config.drift.reference_rate = 1.0;  // matches pass-through exactly
  config.drift.tolerance = 0.1;
  config.drift.window_budget = 4;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  EXPECT_EQ(online.Run(&source).stats.drift_flags, 0u);
}

}  // namespace
}  // namespace dlacep
