// Golden equivalence suite for the tape-free inference fast path
// (nn/infer.h): the autograd tape forward is the reference
// implementation, and the frozen forward-only path must reproduce it —
// activations to within 1e-9 elementwise, thresholded marks exactly —
// across random models, sequence lengths {1, 7, 64}, and all three
// network filter types. Also pins the InferenceContext reuse contract:
// recycling one arena across calls of different shapes must not change
// any result.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "dlacep/event_filter.h"
#include "dlacep/tcn_filter.h"
#include "dlacep/window_filter.h"
#include "nn/infer.h"
#include "nn/layers.h"
#include "nn/tape.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

constexpr double kTol = 1e-9;
const size_t kSeqLens[] = {1, 7, 64};

// ---------------------------------------------------------------------
// Layer-level activation equivalence.

TEST(InferEquivalence, DenseMatchesTape) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Dense dense("d", 5, 9, &rng);
    for (size_t t : kSeqLens) {
      const Matrix x = Matrix::Randn(t, 5, 1.0, &rng);
      Tape tape;
      const Matrix& ref = dense.Forward(&tape, tape.Input(x)).value();

      const DenseInfer frozen = Freeze(dense);
      Matrix out(t, 9);
      frozen.Forward(x, &out);
      EXPECT_LE(ref.MaxAbsDiff(out), kTol) << "seed " << seed << " T " << t;
    }
  }
}

TEST(InferEquivalence, StackedBiLstmMatchesTape) {
  for (uint64_t seed : {11u, 12u}) {
    Rng rng(seed);
    StackedBiLstm stack("s", 4, 6, 2, &rng);
    const StackedBiLstmInfer frozen = Freeze(stack);
    InferenceContext ctx;
    for (size_t t : kSeqLens) {
      const Matrix x = Matrix::Randn(t, 4, 1.0, &rng);
      Tape tape;
      const Matrix& ref = stack.Forward(&tape, tape.Input(x)).value();

      ctx.Reset();
      const Matrix& out = frozen.Forward(&ctx, x);
      ASSERT_EQ(ref.rows(), out.rows());
      ASSERT_EQ(ref.cols(), out.cols());
      EXPECT_LE(ref.MaxAbsDiff(out), kTol) << "seed " << seed << " T " << t;
    }
  }
}

TEST(InferEquivalence, TcnMatchesTape) {
  for (uint64_t seed : {21u, 22u}) {
    Rng rng(seed);
    Tcn tcn("t", 3, 5, 2, 3, &rng);
    const TcnInfer frozen = Freeze(tcn);
    InferenceContext ctx;
    for (size_t t : kSeqLens) {
      const Matrix x = Matrix::Randn(t, 3, 1.0, &rng);
      Tape tape;
      const Matrix& ref = tcn.Forward(&tape, tape.Input(x)).value();

      ctx.Reset();
      const Matrix& out = frozen.Forward(&ctx, x);
      ASSERT_EQ(ref.rows(), out.rows());
      ASSERT_EQ(ref.cols(), out.cols());
      EXPECT_LE(ref.MaxAbsDiff(out), kTol) << "seed " << seed << " T " << t;
    }
  }
}

// ---------------------------------------------------------------------
// Batched inference: ForwardBatch over a ragged stacked slab must match
// per-window Forward row for row. Dense/TCN are row-local, so their
// batched path is the same arithmetic; the stacked LSTM's lockstep
// GEMMs reassociate sums across windows, so the contract there is the
// suite-wide 1e-9 — the same tolerance the tape/fast split carries.

std::vector<size_t> PrefixOffsets(const std::vector<size_t>& lens) {
  std::vector<size_t> offsets(1, 0);
  for (size_t len : lens) offsets.push_back(offsets.back() + len);
  return offsets;
}

Matrix StackWindows(const std::vector<Matrix>& windows) {
  size_t total = 0;
  for (const Matrix& w : windows) total += w.rows();
  const size_t cols = windows[0].cols();
  Matrix all(total, cols);
  size_t row = 0;
  for (const Matrix& w : windows) {
    std::copy_n(w.data(), w.rows() * cols, all.data() + row * cols);
    row += w.rows();
  }
  return all;
}

// Ragged on purpose: a length-1 window, a tail shorter than the batch
// max, and a repeat length — the shapes the lockstep recurrence has to
// retire early.
const std::vector<size_t> kRaggedLens = {7, 1, 64, 3, 7};

TEST(InferEquivalence, StackedBiLstmBatchMatchesSingle) {
  for (uint64_t seed : {11u, 12u}) {
    Rng rng(seed);
    StackedBiLstm stack("s", 4, 6, 2, &rng);
    const StackedBiLstmInfer frozen = Freeze(stack);

    std::vector<Matrix> windows;
    for (size_t t : kRaggedLens) {
      windows.push_back(Matrix::Randn(t, 4, 1.0, &rng));
    }
    std::vector<Matrix> refs;
    InferenceContext single;
    for (const Matrix& x : windows) {
      single.Reset();
      refs.push_back(frozen.Forward(&single, x));  // copy out of the arena
    }

    const Matrix x_all = StackWindows(windows);
    const std::vector<size_t> offsets = PrefixOffsets(kRaggedLens);
    InferenceContext ctx;
    ctx.Reset();
    const Matrix& out = frozen.ForwardBatch(&ctx, x_all, offsets);
    ASSERT_EQ(out.rows(), x_all.rows());
    for (size_t w = 0; w < kRaggedLens.size(); ++w) {
      const Matrix& ref = refs[w];
      ASSERT_EQ(ref.cols(), out.cols());
      for (size_t r = 0; r < ref.rows(); ++r) {
        for (size_t c = 0; c < ref.cols(); ++c) {
          EXPECT_NEAR(out(offsets[w] + r, c), ref(r, c), kTol)
              << "seed " << seed << " window " << w << " (" << r << ","
              << c << ")";
        }
      }
    }
  }
}

TEST(InferEquivalence, TcnBatchMatchesSingle) {
  for (uint64_t seed : {21u, 22u}) {
    Rng rng(seed);
    Tcn tcn("t", 3, 5, 2, 3, &rng);
    const TcnInfer frozen = Freeze(tcn);

    std::vector<Matrix> windows;
    for (size_t t : kRaggedLens) {
      windows.push_back(Matrix::Randn(t, 3, 1.0, &rng));
    }
    std::vector<Matrix> refs;
    InferenceContext single;
    for (const Matrix& x : windows) {
      single.Reset();
      refs.push_back(frozen.Forward(&single, x));
    }

    const Matrix x_all = StackWindows(windows);
    const std::vector<size_t> offsets = PrefixOffsets(kRaggedLens);
    InferenceContext ctx;
    ctx.Reset();
    const Matrix& out = frozen.ForwardBatch(&ctx, x_all, offsets);
    ASSERT_EQ(out.rows(), x_all.rows());
    for (size_t w = 0; w < kRaggedLens.size(); ++w) {
      const Matrix& ref = refs[w];
      for (size_t r = 0; r < ref.rows(); ++r) {
        for (size_t c = 0; c < ref.cols(); ++c) {
          // Position-local loop fusion — expected bit-identical, asserted
          // at kTol so an FP-contraction build setting can't flake it.
          EXPECT_NEAR(out(offsets[w] + r, c), ref(r, c), kTol)
              << "seed " << seed << " window " << w << " (" << r << ","
              << c << ")";
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Filter-level mark equivalence: fast path vs tape path, random models ×
// sequence lengths × all three filter types.

class InferFilterEquivalence : public ::testing::Test {
 protected:
  InferFilterEquivalence()
      : stream_(SmallStream(600, 77)),
        pattern_(testing_util::AscendingSeqPattern(stream_.schema_ptr(), 2,
                                                   8)),
        featurizer_(pattern_, stream_) {}

  Matrix RandomFeatures(size_t t, Rng* rng) const {
    return Matrix::Randn(t, featurizer_.feature_dim(), 1.0, rng);
  }

  /// Asserts fast-path == tape-path marks for every (seed, T) cell and
  /// checks that reusing one InferenceContext across the whole sweep
  /// (shrinking and growing T) changes nothing.
  void CheckFilter(const TrainableFilter& filter, uint64_t data_seed) {
    InferenceContext shared;
    Rng rng(data_seed);
    for (size_t t : kSeqLens) {
      const Matrix features = RandomFeatures(t, &rng);
      const std::vector<int> tape_marks = filter.MarkFeaturesTape(features);
      const std::vector<int> fast_marks = filter.MarkFeatures(features);
      const std::vector<int> reused_marks =
          filter.MarkFeaturesWith(features, &shared);
      ASSERT_EQ(tape_marks.size(), t);
      EXPECT_EQ(tape_marks, fast_marks) << "T " << t;
      EXPECT_EQ(tape_marks, reused_marks) << "T " << t;
    }
    // Second pass over the same shapes through the already-warm arena:
    // buffer recycling must be idempotent.
    Rng rng2(data_seed);
    for (size_t t : kSeqLens) {
      const Matrix features = RandomFeatures(t, &rng2);
      EXPECT_EQ(filter.MarkFeaturesTape(features),
                filter.MarkFeaturesWith(features, &shared))
          << "reused-arena pass, T " << t;
    }
  }

  /// Batched marks must equal per-window MarkWith marks exactly — for
  /// every grouping of the same window set (batch sizes 1, 2, 3, 8 over
  /// ten windows leave ragged tails of every flavor), all through ONE
  /// shared arena so buffer recycling across batch shapes is covered.
  void CheckFilterBatch(const StreamFilter& filter) {
    std::vector<WindowRange> windows;
    size_t begin = 0;
    for (size_t size : {16u, 1u, 64u, 7u, 16u, 3u, 33u, 16u, 9u, 5u}) {
      windows.push_back(WindowRange{begin, begin + size});
      begin += size / 2 + 1;  // overlapping, like the assembler's 2W/W
    }
    InferenceContext single;
    std::vector<std::vector<int>> expected(windows.size());
    for (size_t i = 0; i < windows.size(); ++i) {
      expected[i] = filter.MarkWith(stream_, windows[i], &single);
    }
    InferenceContext shared;
    for (size_t batch : {1u, 2u, 3u, 8u}) {
      std::vector<std::vector<int>> got(windows.size());
      for (size_t b = 0; b < windows.size(); b += batch) {
        const size_t count = std::min(batch, windows.size() - b);
        filter.MarkBatchWith(
            stream_,
            std::span<const WindowRange>(windows.data() + b, count),
            &shared, got.data() + b);
      }
      for (size_t i = 0; i < windows.size(); ++i) {
        EXPECT_EQ(expected[i], got[i])
            << "batch " << batch << " window " << i;
      }
    }
  }

  EventStream stream_;
  Pattern pattern_;
  Featurizer featurizer_;
};

TEST_F(InferFilterEquivalence, EventNetworkFilter) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    EventNetworkFilter filter(&featurizer_, network, 0.5);
    CheckFilter(filter, 1000 + seed);
  }
}

TEST_F(InferFilterEquivalence, TcnEventFilter) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    TcnEventFilter filter(&featurizer_, network, 0.5);
    CheckFilter(filter, 2000 + seed);
  }
}

TEST_F(InferFilterEquivalence, WindowNetworkFilter) {
  for (uint64_t seed : {51u, 52u, 53u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    WindowNetworkFilter filter(&featurizer_, network, 0.5);
    CheckFilter(filter, 3000 + seed);

    // The window probability itself — the pre-threshold activation —
    // must agree to 1e-9, not just the thresholded decision.
    Rng rng(4000 + seed);
    for (size_t t : kSeqLens) {
      const Matrix features = RandomFeatures(t, &rng);
      EXPECT_NEAR(filter.WindowProbability(features),
                  filter.WindowProbabilityTape(features), kTol)
          << "T " << t;
    }
  }
}

// ---------------------------------------------------------------------
// Batched marking: MarkBatchWith must reproduce per-window MarkWith
// marks exactly for every batch grouping, across all three filter
// types (the TCN filter overrides MarkBatchWith; MarkBatchOnline there
// exercises the base-class per-window loop).

TEST_F(InferFilterEquivalence, EventNetworkFilterBatchMarks) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    EventNetworkFilter filter(&featurizer_, network, 0.5);
    CheckFilterBatch(filter);
  }
}

TEST_F(InferFilterEquivalence, TcnEventFilterBatchMarks) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    TcnEventFilter filter(&featurizer_, network, 0.5);
    CheckFilterBatch(filter);
  }
}

TEST_F(InferFilterEquivalence, WindowNetworkFilterBatchMarks) {
  for (uint64_t seed : {51u, 52u, 53u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    WindowNetworkFilter filter(&featurizer_, network, 0.5);
    CheckFilterBatch(filter);
  }
}

// MarkBatchOnline with per-window threshold boosts must match the
// per-window MarkOnline it batches (the level-1 overload regime rides
// this path; the pass-through base default must also hold).
TEST_F(InferFilterEquivalence, EventNetworkFilterBatchOnlineBoosts) {
  NetworkConfig network;
  network.hidden_dim = 8;
  network.num_layers = 2;
  network.seed = 71;
  EventNetworkFilter filter(&featurizer_, network, 0.5);

  std::vector<OnlineWindow> windows;
  std::vector<std::shared_ptr<EventStream>> slices;
  size_t begin = 0;
  for (size_t size : {16u, 7u, 33u, 1u, 16u}) {
    auto slice = std::make_shared<EventStream>(stream_.Slice(begin, size));
    slices.push_back(slice);
    windows.push_back(
        OnlineWindow{slice.get(), 0, begin % 2 == 0 ? 0.0 : 0.2});
    begin += size / 2 + 1;
  }
  InferenceContext single;
  std::vector<std::vector<int>> expected(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    expected[i] = filter.MarkOnline(*windows[i].events,
                                    windows[i].stream_begin, &single,
                                    windows[i].threshold_boost);
  }
  InferenceContext shared;
  std::vector<std::vector<int>> got(windows.size());
  filter.MarkBatchOnline(windows, &shared, got.data());
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(expected[i], got[i]) << "window " << i;
  }
}

// ---------------------------------------------------------------------
// End-to-end Mark: the stream-facing entry point (featurize + fast
// path) must be invariant to which context — none, fresh, or reused —
// serves the call.

TEST_F(InferFilterEquivalence, MarkIsInvariantToContextReuse) {
  NetworkConfig network;
  network.hidden_dim = 8;
  network.num_layers = 2;
  network.seed = 61;
  EventNetworkFilter filter(&featurizer_, network, 0.5);

  InferenceContext reused;
  for (size_t begin : {0u, 100u, 200u}) {
    for (size_t size : {1u, 7u, 64u}) {
      const WindowRange range{begin, begin + size};
      const std::vector<int> plain = filter.Mark(stream_, range);
      InferenceContext fresh;
      EXPECT_EQ(plain, filter.MarkWith(stream_, range, &fresh));
      EXPECT_EQ(plain, filter.MarkWith(stream_, range, &reused));
    }
  }
}

}  // namespace
}  // namespace dlacep
