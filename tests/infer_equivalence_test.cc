// Golden equivalence suite for the tape-free inference fast path
// (nn/infer.h): the autograd tape forward is the reference
// implementation, and the frozen forward-only path must reproduce it —
// activations to within 1e-9 elementwise, thresholded marks exactly —
// across random models, sequence lengths {1, 7, 64}, and all three
// network filter types. Also pins the InferenceContext reuse contract:
// recycling one arena across calls of different shapes must not change
// any result.

#include <gtest/gtest.h>

#include <vector>

#include "dlacep/event_filter.h"
#include "dlacep/tcn_filter.h"
#include "dlacep/window_filter.h"
#include "nn/infer.h"
#include "nn/layers.h"
#include "nn/tape.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

constexpr double kTol = 1e-9;
const size_t kSeqLens[] = {1, 7, 64};

// ---------------------------------------------------------------------
// Layer-level activation equivalence.

TEST(InferEquivalence, DenseMatchesTape) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    Dense dense("d", 5, 9, &rng);
    for (size_t t : kSeqLens) {
      const Matrix x = Matrix::Randn(t, 5, 1.0, &rng);
      Tape tape;
      const Matrix& ref = dense.Forward(&tape, tape.Input(x)).value();

      const DenseInfer frozen = Freeze(dense);
      Matrix out(t, 9);
      frozen.Forward(x, &out);
      EXPECT_LE(ref.MaxAbsDiff(out), kTol) << "seed " << seed << " T " << t;
    }
  }
}

TEST(InferEquivalence, StackedBiLstmMatchesTape) {
  for (uint64_t seed : {11u, 12u}) {
    Rng rng(seed);
    StackedBiLstm stack("s", 4, 6, 2, &rng);
    const StackedBiLstmInfer frozen = Freeze(stack);
    InferenceContext ctx;
    for (size_t t : kSeqLens) {
      const Matrix x = Matrix::Randn(t, 4, 1.0, &rng);
      Tape tape;
      const Matrix& ref = stack.Forward(&tape, tape.Input(x)).value();

      ctx.Reset();
      const Matrix& out = frozen.Forward(&ctx, x);
      ASSERT_EQ(ref.rows(), out.rows());
      ASSERT_EQ(ref.cols(), out.cols());
      EXPECT_LE(ref.MaxAbsDiff(out), kTol) << "seed " << seed << " T " << t;
    }
  }
}

TEST(InferEquivalence, TcnMatchesTape) {
  for (uint64_t seed : {21u, 22u}) {
    Rng rng(seed);
    Tcn tcn("t", 3, 5, 2, 3, &rng);
    const TcnInfer frozen = Freeze(tcn);
    InferenceContext ctx;
    for (size_t t : kSeqLens) {
      const Matrix x = Matrix::Randn(t, 3, 1.0, &rng);
      Tape tape;
      const Matrix& ref = tcn.Forward(&tape, tape.Input(x)).value();

      ctx.Reset();
      const Matrix& out = frozen.Forward(&ctx, x);
      ASSERT_EQ(ref.rows(), out.rows());
      ASSERT_EQ(ref.cols(), out.cols());
      EXPECT_LE(ref.MaxAbsDiff(out), kTol) << "seed " << seed << " T " << t;
    }
  }
}

// ---------------------------------------------------------------------
// Filter-level mark equivalence: fast path vs tape path, random models ×
// sequence lengths × all three filter types.

class InferFilterEquivalence : public ::testing::Test {
 protected:
  InferFilterEquivalence()
      : stream_(SmallStream(600, 77)),
        pattern_(testing_util::AscendingSeqPattern(stream_.schema_ptr(), 2,
                                                   8)),
        featurizer_(pattern_, stream_) {}

  Matrix RandomFeatures(size_t t, Rng* rng) const {
    return Matrix::Randn(t, featurizer_.feature_dim(), 1.0, rng);
  }

  /// Asserts fast-path == tape-path marks for every (seed, T) cell and
  /// checks that reusing one InferenceContext across the whole sweep
  /// (shrinking and growing T) changes nothing.
  void CheckFilter(const TrainableFilter& filter, uint64_t data_seed) {
    InferenceContext shared;
    Rng rng(data_seed);
    for (size_t t : kSeqLens) {
      const Matrix features = RandomFeatures(t, &rng);
      const std::vector<int> tape_marks = filter.MarkFeaturesTape(features);
      const std::vector<int> fast_marks = filter.MarkFeatures(features);
      const std::vector<int> reused_marks =
          filter.MarkFeaturesWith(features, &shared);
      ASSERT_EQ(tape_marks.size(), t);
      EXPECT_EQ(tape_marks, fast_marks) << "T " << t;
      EXPECT_EQ(tape_marks, reused_marks) << "T " << t;
    }
    // Second pass over the same shapes through the already-warm arena:
    // buffer recycling must be idempotent.
    Rng rng2(data_seed);
    for (size_t t : kSeqLens) {
      const Matrix features = RandomFeatures(t, &rng2);
      EXPECT_EQ(filter.MarkFeaturesTape(features),
                filter.MarkFeaturesWith(features, &shared))
          << "reused-arena pass, T " << t;
    }
  }

  EventStream stream_;
  Pattern pattern_;
  Featurizer featurizer_;
};

TEST_F(InferFilterEquivalence, EventNetworkFilter) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    EventNetworkFilter filter(&featurizer_, network, 0.5);
    CheckFilter(filter, 1000 + seed);
  }
}

TEST_F(InferFilterEquivalence, TcnEventFilter) {
  for (uint64_t seed : {41u, 42u, 43u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    TcnEventFilter filter(&featurizer_, network, 0.5);
    CheckFilter(filter, 2000 + seed);
  }
}

TEST_F(InferFilterEquivalence, WindowNetworkFilter) {
  for (uint64_t seed : {51u, 52u, 53u}) {
    NetworkConfig network;
    network.hidden_dim = 6 + seed % 5;
    network.num_layers = 1 + seed % 2;
    network.seed = seed;
    WindowNetworkFilter filter(&featurizer_, network, 0.5);
    CheckFilter(filter, 3000 + seed);

    // The window probability itself — the pre-threshold activation —
    // must agree to 1e-9, not just the thresholded decision.
    Rng rng(4000 + seed);
    for (size_t t : kSeqLens) {
      const Matrix features = RandomFeatures(t, &rng);
      EXPECT_NEAR(filter.WindowProbability(features),
                  filter.WindowProbabilityTape(features), kTol)
          << "T " << t;
    }
  }
}

// ---------------------------------------------------------------------
// End-to-end Mark: the stream-facing entry point (featurize + fast
// path) must be invariant to which context — none, fresh, or reused —
// serves the call.

TEST_F(InferFilterEquivalence, MarkIsInvariantToContextReuse) {
  NetworkConfig network;
  network.hidden_dim = 8;
  network.num_layers = 2;
  network.seed = 61;
  EventNetworkFilter filter(&featurizer_, network, 0.5);

  InferenceContext reused;
  for (size_t begin : {0u, 100u, 200u}) {
    for (size_t size : {1u, 7u, 64u}) {
      const WindowRange range{begin, begin + size};
      const std::vector<int> plain = filter.Mark(stream_, range);
      InferenceContext fresh;
      EXPECT_EQ(plain, filter.MarkWith(stream_, range, &fresh));
      EXPECT_EQ(plain, filter.MarkWith(stream_, range, &reused));
    }
  }
}

}  // namespace
}  // namespace dlacep
