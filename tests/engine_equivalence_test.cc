// Property tests: every production engine must emit exactly the match set
// of the brute-force oracle, across pattern shapes, seeds, and window
// sizes. This is the core correctness contract of the CEP substrate.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "cep/oracle.h"
#include "pattern/builder.h"
#include "stream/generator.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

std::span<const Event> SpanOf(const EventStream& stream) {
  return std::span<const Event>(stream.events().data(), stream.size());
}

void ExpectEngineMatchesOracle(EngineKind kind, const Pattern& pattern,
                               const EventStream& stream) {
  const MatchSet expected = EnumerateAllMatches(pattern, SpanOf(stream));
  auto engine = CreateEngine(kind, pattern);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  MatchSet actual;
  ASSERT_TRUE(engine.value()->Evaluate(SpanOf(stream), &actual).ok());
  EXPECT_EQ(expected.size(), actual.size())
      << "engine " << EngineKindName(kind) << " vs oracle on "
      << pattern.ToString();
  for (const Match& m : expected) {
    EXPECT_TRUE(actual.Contains(m))
        << EngineKindName(kind) << " missed " << m.ToString();
  }
  for (const Match& m : actual) {
    EXPECT_TRUE(expected.Contains(m))
        << EngineKindName(kind) << " invented " << m.ToString();
  }
}

// ---------------------------------------------------------------------
// Sequence patterns.

class SeqEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(SeqEquivalence, NfaTreeLazyMatchOracle) {
  const auto [len, window, seed] = GetParam();
  const EventStream stream = SmallStream(60, seed);
  const Pattern pattern =
      AscendingSeqPattern(stream.schema_ptr(), len, window);
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kTree, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kLazy, pattern, stream);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeqEquivalence,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{3}, size_t{4}),
                       ::testing::Values(size_t{8}, size_t{15}, size_t{30}),
                       ::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3})));

// ---------------------------------------------------------------------
// Conjunction patterns.

class ConjEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(ConjEquivalence, NfaTreeLazyMatchOracle) {
  const auto [window, seed] = GetParam();
  const EventStream stream = SmallStream(50, seed);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Conj(builder.Prim("A", "a"), builder.Prim("B", "b"),
                           builder.Prim("C", "c"));
  builder.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "c");
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(window));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kTree, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kLazy, pattern, stream);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConjEquivalence,
    ::testing::Combine(::testing::Values(size_t{6}, size_t{12}, size_t{25}),
                       ::testing::Values(uint64_t{4}, uint64_t{5},
                                         uint64_t{6})));

// Conjunction with repeated types must not double-count {a1, a2} subsets.
TEST(ConjRepeatedTypes, MatchesOracle) {
  const EventStream stream = SmallStream(40, 11, /*num_types=*/2);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Conj(builder.Prim("A", "x"), builder.Prim("A", "y"),
                           builder.Prim("B", "z"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(8));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kTree, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kLazy, pattern, stream);
}

// ---------------------------------------------------------------------
// Disjunction patterns.

class DisjEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DisjEquivalence, NfaTreeLazyMatchOracle) {
  const EventStream stream = SmallStream(60, GetParam());
  PatternBuilder builder(stream.schema_ptr());
  auto branch1 = builder.Seq(builder.Prim("A", "a1"), builder.Prim("B", "b1"));
  auto branch2 = builder.Seq(builder.Prim("C", "c2"), builder.Prim("D", "d2"),
                             builder.Prim("E", "e2"));
  auto root = builder.Disj(std::move(branch1), std::move(branch2));
  builder.WhereCmp(1.0, "a1", "vol", CmpOp::kLt, 1.0, "b1");
  builder.WhereCmp(1.0, "c2", "vol", CmpOp::kGt, 1.0, "e2");
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(12));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kTree, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kLazy, pattern, stream);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DisjEquivalence,
                         ::testing::Values(uint64_t{7}, uint64_t{8},
                                           uint64_t{9}, uint64_t{10}));

// ---------------------------------------------------------------------
// Kleene closure (NFA + oracle only; tree/lazy reject by design).

class KleeneEquivalence
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

TEST_P(KleeneEquivalence, KcPrimitiveInsideSeq) {
  const auto [max_reps, seed] = GetParam();
  const EventStream stream = SmallStream(40, seed);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"),
                          builder.Kleene(builder.Prim("B", "ks"), 1, max_reps),
                          builder.Prim("C", "c"));
  builder.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "ks");
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(10));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
}

TEST_P(KleeneEquivalence, TopLevelKcOverSeq) {
  const auto [max_reps, seed] = GetParam();
  const EventStream stream = SmallStream(40, seed);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Kleene(
      builder.Seq(builder.Prim("A", "a"), builder.Prim("B", "b")), 1,
      max_reps);
  builder.WhereCmp(1.0, "a", "vol", CmpOp::kLt, 1.0, "b");
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(14));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KleeneEquivalence,
    ::testing::Combine(::testing::Values(size_t{2}, size_t{3}),
                       ::testing::Values(uint64_t{21}, uint64_t{22},
                                         uint64_t{23})));

// ---------------------------------------------------------------------
// Negation (NFA + oracle only).

class NegEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NegEquivalence, NegPrimitive) {
  const EventStream stream = SmallStream(50, GetParam());
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"),
                          builder.Neg(builder.Prim("C", "nc")),
                          builder.Prim("B", "b"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(10));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
}

TEST_P(NegEquivalence, NegPrimitiveWithCondition) {
  const EventStream stream = SmallStream(50, GetParam());
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"),
                          builder.Neg(builder.Prim("C", "nc")),
                          builder.Prim("B", "b"));
  // Only high-volume C events forbid the match.
  builder.WhereCmp(1.0, "nc", "vol", CmpOp::kGt, 1.0, "a");
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(10));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
}

TEST_P(NegEquivalence, NegNestedSeq) {
  const EventStream stream = SmallStream(50, GetParam());
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(
      builder.Prim("A", "a"),
      builder.Neg(builder.Seq(builder.Prim("C", "nc"),
                              builder.Prim("D", "nd"))),
      builder.Prim("B", "b"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(12));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NegEquivalence,
                         ::testing::Values(uint64_t{31}, uint64_t{32},
                                           uint64_t{33}, uint64_t{34}));

// ---------------------------------------------------------------------
// Time-window patterns.

TEST(TimeWindowEquivalence, SeqMatchesOracle) {
  const EventStream stream = SmallStream(50, 41);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"), builder.Prim("B", "b"));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Time(7.5));
  ExpectEngineMatchesOracle(EngineKind::kNfa, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kTree, pattern, stream);
  ExpectEngineMatchesOracle(EngineKind::kLazy, pattern, stream);
}

// ---------------------------------------------------------------------
// Engine capability boundaries.

TEST(EngineCapabilities, TreeAndLazyRejectKleene) {
  const EventStream stream = SmallStream(10, 1);
  PatternBuilder builder(stream.schema_ptr());
  auto root = builder.Seq(builder.Prim("A", "a"),
                          builder.Kleene(builder.Prim("B", "k"), 1, 2));
  const Pattern pattern =
      builder.BuildOrDie(std::move(root), WindowSpec::Count(5));
  EXPECT_FALSE(CreateEngine(EngineKind::kTree, pattern).ok());
  EXPECT_FALSE(CreateEngine(EngineKind::kLazy, pattern).ok());
  EXPECT_TRUE(CreateEngine(EngineKind::kNfa, pattern).ok());
}

}  // namespace
}  // namespace dlacep
