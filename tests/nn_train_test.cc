// End-to-end learning tests for the nn substrate: optimizers minimize,
// schedules decay, training converges on toy sequence-labeling tasks with
// both output heads DLACEP uses (BCE window head, BI-CRF event head), and
// parameters survive a save/load round trip.

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/crf.h"
#include "nn/layers.h"
#include "nn/metrics.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"

namespace dlacep {
namespace {

TEST(Optimizers, AdamMinimizesQuadratic) {
  Parameter p("p", Matrix(1, 3));
  p.value(0, 0) = 4.0;
  p.value(0, 1) = -3.0;
  p.value(0, 2) = 2.0;
  Adam adam({&p}, 0.1);
  for (int step = 0; step < 300; ++step) {
    // loss = ||p - target||^2, target = (1, 2, 3).
    p.ZeroGrad();
    p.grad(0, 0) = 2.0 * (p.value(0, 0) - 1.0);
    p.grad(0, 1) = 2.0 * (p.value(0, 1) - 2.0);
    p.grad(0, 2) = 2.0 * (p.value(0, 2) - 3.0);
    adam.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 1.0, 1e-2);
  EXPECT_NEAR(p.value(0, 1), 2.0, 1e-2);
  EXPECT_NEAR(p.value(0, 2), 3.0, 1e-2);
}

TEST(Optimizers, SgdWithMomentumMinimizesQuadratic) {
  Parameter p("p", Matrix(1, 1));
  p.value(0, 0) = 5.0;
  Sgd sgd({&p}, 0.05, 0.9);
  for (int step = 0; step < 200; ++step) {
    p.ZeroGrad();
    p.grad(0, 0) = 2.0 * p.value(0, 0);
    sgd.Step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0, 1e-3);
}

TEST(Optimizers, GradClipBoundsGlobalNorm) {
  Parameter a("a", Matrix(1, 2));
  Parameter b("b", Matrix(1, 1));
  a.grad(0, 0) = 3.0;
  a.grad(0, 1) = 4.0;
  b.grad(0, 0) = 12.0;  // global norm = 13
  const double before = ClipGradNorm({&a, &b}, 1.0);
  EXPECT_NEAR(before, 13.0, 1e-12);
  const double after_norm =
      std::sqrt(a.grad(0, 0) * a.grad(0, 0) + a.grad(0, 1) * a.grad(0, 1) +
                b.grad(0, 0) * b.grad(0, 0));
  EXPECT_NEAR(after_norm, 1.0, 1e-9);
}

TEST(Optimizers, LrScheduleDecaysGeometrically) {
  const LrSchedule schedule(1e-3, 1e-4, 10);
  EXPECT_DOUBLE_EQ(schedule.At(0), 1e-3);
  EXPECT_NEAR(schedule.At(10), 1e-4, 1e-12);
  EXPECT_GT(schedule.At(3), schedule.At(7));
}

// ---------------------------------------------------------------------
// Toy task 1 (window head): the window label is 1 iff any element of the
// sequence exceeds 1.0.

class WindowToyModel : public SequenceModel {
 public:
  explicit WindowToyModel(Rng* rng)
      : stack_("s", 1, 10, 1, rng), head_("h", stack_.out_dim(), 1, rng) {}

  Var Loss(Tape* tape, const Sample& sample) override {
    Var logits = Logits(tape, sample.features);
    Matrix target(1, 1);
    target(0, 0) = static_cast<double>(sample.labels[0]);
    return ops::BceWithLogits(logits, target);
  }

  Var Logits(Tape* tape, const Matrix& features) {
    Var h = stack_.Forward(tape, tape->Input(features));
    // Max-pool the hidden sequence into a window summary.
    Var pooled = ops::MaxOverRows(h);
    return head_.Forward(tape, pooled);
  }

  int Predict(const Matrix& features) {
    Tape tape;
    return Logits(&tape, features).value()(0, 0) > 0.0 ? 1 : 0;
  }

  std::vector<Parameter*> Params() override {
    std::vector<Parameter*> params = stack_.Params();
    for (Parameter* p : head_.Params()) params.push_back(p);
    return params;
  }

 private:
  StackedBiLstm stack_;
  Dense head_;
};

std::vector<Sample> MakeWindowToyData(size_t n, size_t t_steps,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples;
  for (size_t k = 0; k < n; ++k) {
    Sample s;
    s.features = Matrix(t_steps, 1);
    int label = 0;
    for (size_t t = 0; t < t_steps; ++t) {
      const double v = rng.Normal(0.0, 0.8);
      s.features(t, 0) = v;
      if (v > 1.0) label = 1;
    }
    s.labels = {label};
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Training, WindowHeadLearnsToyTask) {
  Rng rng(31);
  WindowToyModel model(&rng);
  const std::vector<Sample> train = MakeWindowToyData(250, 8, 32);
  const std::vector<Sample> test = MakeWindowToyData(60, 8, 33);

  TrainConfig config;
  config.max_epochs = 100;
  config.batch_size = 8;
  const TrainResult result = Train(&model, train, config);
  EXPECT_GT(result.epochs_run, 0u);
  EXPECT_LT(result.final_loss, result.loss_history.front());

  BinaryMetrics metrics;
  for (const Sample& s : test) {
    metrics.Accumulate({model.Predict(s.features)}, {s.labels[0]});
  }
  EXPECT_GT(metrics.accuracy(), 0.85)
      << "P=" << metrics.precision() << " R=" << metrics.recall();
}

// ---------------------------------------------------------------------
// Toy task 2 (event head): per-step label is 1 iff the value at the NEXT
// step is higher — solvable only with future context, which exercises
// both the backward LSTM direction and the BI-CRF head.

class EventToyModel : public SequenceModel {
 public:
  explicit EventToyModel(Rng* rng)
      : stack_("s", 1, 6, 1, rng),
        head_fwd_("hf", stack_.out_dim(), 2, rng),
        head_bwd_("hb", stack_.out_dim(), 2, rng),
        crf_("crf", 2, rng) {}

  Var Loss(Tape* tape, const Sample& sample) override {
    auto [emissions_f, emissions_b] = Emissions(tape, sample.features);
    return crf_.Nll(tape, emissions_f, emissions_b, sample.labels);
  }

  std::pair<Var, Var> Emissions(Tape* tape, const Matrix& features) {
    Var h = stack_.Forward(tape, tape->Input(features));
    return {head_fwd_.Forward(tape, h), head_bwd_.Forward(tape, h)};
  }

  std::vector<int> Predict(const Matrix& features) {
    Tape tape;
    auto [emissions_f, emissions_b] = Emissions(&tape, features);
    return crf_.Decode(emissions_f.value(), emissions_b.value());
  }

  std::vector<Parameter*> Params() override {
    std::vector<Parameter*> params = stack_.Params();
    for (Parameter* p : head_fwd_.Params()) params.push_back(p);
    for (Parameter* p : head_bwd_.Params()) params.push_back(p);
    for (Parameter* p : crf_.Params()) params.push_back(p);
    return params;
  }

 private:
  StackedBiLstm stack_;
  Dense head_fwd_;
  Dense head_bwd_;
  BiCrf crf_;
};

std::vector<Sample> MakeEventToyData(size_t n, size_t t_steps,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples;
  for (size_t k = 0; k < n; ++k) {
    Sample s;
    s.features = Matrix(t_steps, 1);
    for (size_t t = 0; t < t_steps; ++t) {
      s.features(t, 0) = rng.Normal(0.0, 1.0);
    }
    s.labels.resize(t_steps, 0);
    for (size_t t = 0; t + 1 < t_steps; ++t) {
      s.labels[t] = s.features(t + 1, 0) > s.features(t, 0) ? 1 : 0;
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

TEST(Training, EventHeadNeedsFutureContextAndLearnsIt) {
  Rng rng(41);
  EventToyModel model(&rng);
  const std::vector<Sample> train = MakeEventToyData(250, 7, 42);
  const std::vector<Sample> test = MakeEventToyData(40, 7, 43);

  TrainConfig config;
  config.max_epochs = 60;
  config.batch_size = 8;
  const TrainResult result = Train(&model, train, config);
  EXPECT_LT(result.final_loss, result.loss_history.front());

  BinaryMetrics metrics;
  for (const Sample& s : test) {
    metrics.Accumulate(model.Predict(s.features), s.labels);
  }
  EXPECT_GT(metrics.f1(), 0.8) << "P=" << metrics.precision()
                               << " R=" << metrics.recall();
}

// The same future-context task, solved by the TCN backbone (centered
// dilated convolutions see both directions, like the BiLSTM).
class TcnToyModel : public SequenceModel {
 public:
  explicit TcnToyModel(Rng* rng)
      : backbone_("t", 1, 8, 2, 3, rng),
        head_fwd_("hf", backbone_.out_dim(), 2, rng),
        head_bwd_("hb", backbone_.out_dim(), 2, rng),
        crf_("crf", 2, rng) {}

  Var Loss(Tape* tape, const Sample& sample) override {
    Var h = backbone_.Forward(tape, tape->Input(sample.features));
    return crf_.Nll(tape, head_fwd_.Forward(tape, h),
                    head_bwd_.Forward(tape, h), sample.labels);
  }

  std::vector<int> Predict(const Matrix& features) {
    Tape tape;
    Var h = backbone_.Forward(&tape, tape.Input(features));
    Var emissions_f = head_fwd_.Forward(&tape, h);
    Var emissions_b = head_bwd_.Forward(&tape, h);
    return crf_.Decode(emissions_f.value(), emissions_b.value());
  }

  std::vector<Parameter*> Params() override {
    std::vector<Parameter*> params = backbone_.Params();
    for (Parameter* p : head_fwd_.Params()) params.push_back(p);
    for (Parameter* p : head_bwd_.Params()) params.push_back(p);
    for (Parameter* p : crf_.Params()) params.push_back(p);
    return params;
  }

 private:
  Tcn backbone_;
  Dense head_fwd_;
  Dense head_bwd_;
  BiCrf crf_;
};

TEST(Training, TcnBackboneAlsoLearnsTheFutureContextTask) {
  Rng rng(45);
  TcnToyModel model(&rng);
  const std::vector<Sample> train = MakeEventToyData(250, 7, 46);
  const std::vector<Sample> test = MakeEventToyData(40, 7, 47);

  TrainConfig config;
  config.max_epochs = 60;
  config.batch_size = 8;
  const TrainResult result = Train(&model, train, config);
  EXPECT_LT(result.final_loss, result.loss_history.front());

  BinaryMetrics metrics;
  for (const Sample& s : test) {
    metrics.Accumulate(model.Predict(s.features), s.labels);
  }
  EXPECT_GT(metrics.f1(), 0.75) << "P=" << metrics.precision()
                                << " R=" << metrics.recall();
}

TEST(Training, ConvergenceRuleStopsEarly) {
  Rng rng(51);
  WindowToyModel model(&rng);
  // A single constant sample converges almost immediately.
  std::vector<Sample> samples;
  Sample s;
  s.features = Matrix(4, 1, 0.5);
  s.labels = {0};
  samples.push_back(std::move(s));

  TrainConfig config;
  config.max_epochs = 200;
  config.batch_size = 1;
  const TrainResult result = Train(&model, samples, config);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.epochs_run, 200u);
}

TEST(Serialization, RoundTripRestoresExactValues) {
  Rng rng(61);
  StackedBiLstm stack("s", 2, 3, 2, &rng);
  Dense head("h", stack.out_dim(), 1, &rng);
  std::vector<Parameter*> params = stack.Params();
  for (Parameter* p : head.Params()) params.push_back(p);

  const std::string path = ::testing::TempDir() + "/dlnn_roundtrip.bin";
  ASSERT_TRUE(SaveParameters(params, path).ok());

  // Capture, perturb, reload, compare.
  std::vector<Matrix> originals;
  for (Parameter* p : params) originals.push_back(p->value);
  for (Parameter* p : params) p->value.Fill(123.0);
  ASSERT_TRUE(LoadParameters(params, path).ok());
  for (size_t k = 0; k < params.size(); ++k) {
    EXPECT_EQ(params[k]->value.MaxAbsDiff(originals[k]), 0.0)
        << params[k]->name;
  }
  std::remove(path.c_str());
}

TEST(Serialization, ShapeMismatchIsRejected) {
  Rng rng(62);
  Dense a("same", 2, 3, &rng);
  const std::string path = ::testing::TempDir() + "/dlnn_mismatch.bin";
  ASSERT_TRUE(SaveParameters(a.Params(), path).ok());

  Dense b("same", 3, 3, &rng);  // different input dim, same names
  EXPECT_FALSE(LoadParameters(b.Params(), path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dlacep
