// Tests for the extension modules: load-shedding baseline filters,
// concept-drift monitoring + adaptive retraining, and multi-pattern
// monitoring with a shared filter.

#include <gtest/gtest.h>

#include "cep/oracle.h"
#include "dlacep/assembler.h"
#include "dlacep/drift.h"
#include "dlacep/extractor.h"
#include "dlacep/multi_pattern.h"
#include "dlacep/padding.h"
#include "dlacep/pipeline.h"
#include "dlacep/shedding_filter.h"
#include "pattern/builder.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

Pattern TypeOnlySeq(std::shared_ptr<const Schema> schema, size_t window) {
  PatternBuilder builder(std::move(schema));
  auto root = builder.Seq(builder.Prim("A", "a"), builder.Prim("B", "b"),
                          builder.Prim("C", "c"));
  return builder.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

// ---------------------------------------------------------------------
// Shedding filters.

TEST(SheddingFilters, RandomSheddingKeepsRequestedFraction) {
  const EventStream stream = SmallStream(1000, 61);
  RandomSheddingFilter filter(0.3, 7);
  size_t kept = 0;
  for (const WindowRange& range : CountWindows(stream.size(), 50, 50)) {
    for (int m : filter.Mark(stream, range)) kept += m;
  }
  EXPECT_NEAR(static_cast<double>(kept) / 1000.0, 0.3, 0.06);
}

TEST(SheddingFilters, TypeSheddingKeepsExactlyRelevantTypes) {
  const EventStream stream = SmallStream(300, 62, /*num_types=*/6);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 8);
  TypeSheddingFilter filter(pattern);
  const WindowRange range{0, 300};
  const std::vector<int> marks = filter.Mark(stream, range);
  for (size_t t = 0; t < 300; ++t) {
    const bool relevant = stream[t].type <= 2;  // A, B, C
    EXPECT_EQ(marks[t], relevant ? 1 : 0) << "at " << t;
  }
}

TEST(SheddingFilters, TypeSheddingLosesNoMatches) {
  const EventStream stream = SmallStream(400, 63, /*num_types=*/6);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 8);
  DlacepConfig config;
  DlacepPipeline pipeline(
      pattern, std::make_unique<TypeSheddingFilter>(pattern), config);
  const PipelineResult result = pipeline.Evaluate(stream);
  const MatchSet exact = EnumerateAllMatches(
      pattern, {stream.events().data(), stream.size()});
  EXPECT_EQ(result.matches.size(), exact.size());
  EXPECT_GT(result.filtering_ratio(), 0.3);  // 3 of 6 types dropped
}

TEST(SheddingFilters, RandomSheddingLosesMatchesAtEqualRatio) {
  // The headline claim behind learned filtration: at a comparable
  // filtering ratio, content-blind shedding loses many matches.
  const EventStream stream = SmallStream(400, 64);
  const Pattern pattern = TypeOnlySeq(stream.schema_ptr(), 8);
  DlacepConfig config;
  DlacepPipeline pipeline(
      pattern, std::make_unique<RandomSheddingFilter>(0.5, 9), config);
  const PipelineResult result = pipeline.Evaluate(stream);
  const MatchSet exact = EnumerateAllMatches(
      pattern, {stream.events().data(), stream.size()});
  ASSERT_GT(exact.size(), 10u);
  const MatchSetMetrics quality = CompareMatchSets(exact, result.matches);
  EXPECT_LT(quality.recall, 0.6);   // heavy loss
  EXPECT_EQ(quality.precision, 1.0);  // still no false positives
}

// ---------------------------------------------------------------------
// Drift monitoring.

TEST(DriftMonitor, FiresOnlyOutsideToleranceAfterWarmup) {
  DriftMonitor monitor(/*reference_rate=*/0.5, /*tolerance=*/0.2,
                       /*window_budget=*/3);
  const std::vector<int> half = {1, 0, 1, 0};
  EXPECT_FALSE(monitor.Observe(half));  // warm-up
  EXPECT_FALSE(monitor.Observe(half));
  EXPECT_FALSE(monitor.Observe(half));  // rate 0.5 — in band
  const std::vector<int> none = {0, 0, 0, 0};
  EXPECT_FALSE(monitor.Observe(none));  // rate 0.33 — still in band
  EXPECT_TRUE(monitor.Observe(none));   // rate 0.17 — drift
  monitor.ResetReference();
  EXPECT_FALSE(monitor.Observe(none));  // re-anchored
}

TEST(DriftMonitor, ObservedRateTracksSlidingBudget) {
  DriftMonitor monitor(0.0, 1.0, 2);
  monitor.Observe({1, 1});
  monitor.Observe({0, 0});
  EXPECT_DOUBLE_EQ(monitor.observed_rate(), 0.5);
  monitor.Observe({0, 0});  // {1,1} slides out
  EXPECT_DOUBLE_EQ(monitor.observed_rate(), 0.0);
}

TEST(AdaptiveRetraining, RetrainsOnInjectedDriftAndKeepsExtracting) {
  // Train on a stream where the pattern types are common, then evaluate
  // on a stream whose type distribution shifted (types remapped), which
  // starves the filter and trips the marking-rate monitor.
  const EventStream train = SmallStream(1500, 65);
  const Pattern pattern = TypeOnlySeq(train.schema_ptr(), 8);

  DlacepConfig config;
  config.network.hidden_dim = 8;
  config.network.num_layers = 1;
  config.train.max_epochs = 8;

  const Featurizer featurizer(pattern, train);
  EventNetworkFilter filter(&featurizer, config.network,
                            config.event_threshold);
  const InputAssembler assembler = InputAssembler::ForWindow(8);
  const FilterDataset dataset =
      BuildFilterDataset(pattern, train, assembler, featurizer, 0.9, 17);
  filter.Fit(dataset.train_event, config.train);

  // Drifted stream: far fewer A/B/C events (types shifted up by 2).
  SyntheticConfig drifted_config;
  drifted_config.num_events = 1200;
  drifted_config.num_types = 5;
  drifted_config.seed = 66;
  EventStream drifted = GenerateSynthetic(drifted_config);

  DriftMonitor monitor(/*reference_rate=*/0.9, /*tolerance=*/0.15,
                       /*window_budget=*/5);
  const AdaptiveResult result = EvaluateWithRetraining(
      pattern, &filter, featurizer, drifted, &monitor,
      /*retrain_events=*/400, config);
  // The monitor must have fired at least once and triggered fine-tuning.
  EXPECT_GE(result.drifts_detected, 1u);
  EXPECT_GE(result.retrainings, 1u);
  // Output must still be a subset of the exact matches (NEG-free).
  const MatchSet exact = EnumerateAllMatches(
      pattern, {drifted.events().data(), drifted.size()});
  for (const Match& m : result.matches) {
    EXPECT_TRUE(exact.Contains(m));
  }
}

// ---------------------------------------------------------------------
// Padding (time-based window simulation).

TEST(Padding, RandomWindowsProduceFixedSizeChunks) {
  const EventStream source = SmallStream(100, 71);
  const EventStream padded = PadRandomWindows(source, 8, 3);
  EXPECT_EQ(padded.size() % 8, 0u);
  // Every real event survives, in order.
  std::vector<TypeId> original;
  for (const Event& e : source) original.push_back(e.type);
  std::vector<TypeId> kept;
  for (const Event& e : padded) {
    if (!e.is_blank()) kept.push_back(e.type);
  }
  EXPECT_EQ(kept, original);
  EXPECT_GT(PaddingRatio(padded), 0.0);
  EXPECT_LT(PaddingRatio(padded), 0.6);
}

TEST(Padding, TimeWindowsRespectTheSpan) {
  auto schema = MakeSyntheticSchema(2, 1);
  EventStream source(schema);
  for (double ts : {0.0, 1.0, 2.0, 10.0, 11.0, 30.0}) {
    source.Append(0, ts, {0.0});
  }
  const EventStream padded = PadTimeWindows(source, 2.5, 4);
  // Three windows: {0,1,2}, {10,11}, {30} — each padded to 4.
  EXPECT_EQ(padded.size(), 12u);
  // Window boundaries: positions 3, 6-7, 9-11 are blanks.
  EXPECT_TRUE(padded[3].is_blank());
  EXPECT_FALSE(padded[4].is_blank());
  EXPECT_TRUE(padded[6].is_blank());
  EXPECT_TRUE(padded[7].is_blank());
  EXPECT_FALSE(padded[8].is_blank());
  EXPECT_TRUE(padded[11].is_blank());
}

TEST(Padding, EmptyStreamStaysEmpty) {
  auto schema = MakeSyntheticSchema(2, 1);
  const EventStream empty(schema);
  EXPECT_EQ(PadRandomWindows(empty, 4, 1).size(), 0u);
  EXPECT_EQ(PadTimeWindows(empty, 1.0, 4).size(), 0u);
  EXPECT_DOUBLE_EQ(PaddingRatio(empty), 0.0);
}

// ---------------------------------------------------------------------
// Multi-pattern monitoring.

TEST(MultiPattern, SharedFilterServesBothPatternsWithoutFalsePositives) {
  const EventStream train = SmallStream(2500, 67);
  const EventStream test = SmallStream(700, 68);
  auto schema = train.schema_ptr();

  std::vector<Pattern> patterns;
  patterns.push_back(TypeOnlySeq(schema, 8));
  {
    PatternBuilder b(schema);
    auto root = b.Seq(b.Prim("D", "d"), b.Prim("E", "e"));
    patterns.push_back(b.BuildOrDie(std::move(root), WindowSpec::Count(6)));
  }

  DlacepConfig config;
  config.network.hidden_dim = 12;
  config.network.num_layers = 1;
  config.train.max_epochs = 45;
  config.event_threshold = 0.35;

  MultiPatternDlacep system(patterns, train, config);
  MultiPatternResult result = system.Evaluate(test);
  ASSERT_EQ(result.per_pattern.size(), 2u);

  for (size_t p = 0; p < patterns.size(); ++p) {
    const MatchSet exact = EnumerateAllMatches(
        patterns[p], {test.events().data(), test.size()});
    for (const Match& m : result.per_pattern[p]) {
      EXPECT_TRUE(exact.Contains(m)) << "pattern " << p;
    }
    // The unified filter must preserve a reasonable share of each
    // pattern's matches.
    const MatchSetMetrics quality =
        CompareMatchSets(exact, result.per_pattern[p]);
    EXPECT_GT(quality.recall, 0.5) << "pattern " << p;
  }
  EXPECT_GT(result.filtering_ratio(), 0.0);
}

TEST(MultiPattern, FastPathEvaluateMatchesLegacyTapeMarking) {
  // Evaluate now marks through the frozen-cell fast path (MarkWith /
  // MarkBatchWith); the autograd-tape Mark per window is the reference
  // it must reproduce bit for bit, at any batch size.
  const EventStream train = SmallStream(1200, 71);
  const EventStream test = SmallStream(500, 72);
  auto schema = train.schema_ptr();

  std::vector<Pattern> patterns;
  patterns.push_back(TypeOnlySeq(schema, 8));
  {
    PatternBuilder b(schema);
    auto root = b.Seq(b.Prim("D", "d"), b.Prim("E", "e"));
    patterns.push_back(b.BuildOrDie(std::move(root), WindowSpec::Count(6)));
  }

  DlacepConfig config;
  config.network.hidden_dim = 8;
  config.network.num_layers = 1;
  config.train.max_epochs = 5;
  MultiPatternDlacep system(patterns, train, config);

  const InputAssembler assembler(2 * system.max_window(),
                                 system.max_window());
  std::vector<const Event*> marked;
  for (const WindowRange& range : assembler.Windows(test.size())) {
    const std::vector<int> marks = system.filter()->Mark(test, range);
    for (size_t t = 0; t < marks.size(); ++t) {
      if (marks[t] != 0) marked.push_back(&test[range.begin + t]);
    }
  }
  std::vector<MatchSet> reference(patterns.size());
  for (size_t p = 0; p < patterns.size(); ++p) {
    CepExtractor extractor(patterns[p]);
    ASSERT_TRUE(extractor.Extract(marked, &reference[p]).ok());
  }

  for (const size_t batch : {1u, 4u}) {
    system.set_batch_size(batch);
    const MultiPatternResult result = system.Evaluate(test);
    ASSERT_EQ(result.per_pattern.size(), patterns.size());
    for (size_t p = 0; p < patterns.size(); ++p) {
      EXPECT_EQ(result.per_pattern[p].size(), reference[p].size())
          << "batch=" << batch << " pattern=" << p;
      EXPECT_EQ(result.per_pattern[p].IntersectionSize(reference[p]),
                reference[p].size())
          << "batch=" << batch << " pattern=" << p;
    }
  }
}

}  // namespace
}  // namespace dlacep
