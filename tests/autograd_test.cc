// Finite-difference verification of every autograd op, the LSTM/BiLSTM
// layers, the CRF losses, and the Tape's gradient accumulation contract.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/crf.h"
#include "nn/grad_check.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace dlacep {
namespace {

// Weights the op output with a fixed pseudo-random matrix before
// reducing, so gradient errors cannot cancel across entries.
Var WeightedSum(Tape* tape, Var x) {
  Matrix weights(x.value().rows(), x.value().cols());
  for (size_t i = 0; i < weights.rows(); ++i) {
    for (size_t j = 0; j < weights.cols(); ++j) {
      weights(i, j) =
          std::sin(static_cast<double>(3 * i + 5 * j) + 0.7) + 1.5;
    }
  }
  return ops::SumAll(ops::Mul(x, tape->Input(std::move(weights))));
}

// Runs the generic check for a forward function of two parameters.
void CheckBinary(
    Parameter* a, Parameter* b,
    const std::function<Var(Tape*, Var, Var)>& op) {
  auto forward = [&](Tape* tape) {
    Var va = tape->Param(a);
    Var vb = tape->Param(b);
    return WeightedSum(tape, op(tape, va, vb));
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result = CheckGradients(
      {a, b}, loss_fn, loss_and_backward, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

void CheckUnary(Parameter* a, const std::function<Var(Tape*, Var)>& op) {
  auto forward = [&](Tape* tape) {
    return WeightedSum(tape, op(tape, tape->Param(a)));
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result =
      CheckGradients({a}, loss_fn, loss_and_backward, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

Parameter MakeParam(const std::string& name, size_t rows, size_t cols,
                    uint64_t seed) {
  Rng rng(seed);
  return Parameter(name, Matrix::Randn(rows, cols, 0.8, &rng));
}

TEST(OpGradients, MatMul) {
  Parameter a = MakeParam("a", 3, 4, 1);
  Parameter b = MakeParam("b", 4, 2, 2);
  CheckBinary(&a, &b, [](Tape*, Var x, Var y) { return ops::MatMul(x, y); });
}

TEST(OpGradients, AddSubMul) {
  Parameter a = MakeParam("a", 3, 3, 3);
  Parameter b = MakeParam("b", 3, 3, 4);
  CheckBinary(&a, &b, [](Tape*, Var x, Var y) { return ops::Add(x, y); });
  CheckBinary(&a, &b, [](Tape*, Var x, Var y) { return ops::Sub(x, y); });
  CheckBinary(&a, &b, [](Tape*, Var x, Var y) { return ops::Mul(x, y); });
}

TEST(OpGradients, Scale) {
  Parameter a = MakeParam("a", 2, 5, 5);
  CheckUnary(&a, [](Tape*, Var x) { return ops::Scale(x, -2.5); });
}

TEST(OpGradients, Broadcasts) {
  Parameter m = MakeParam("m", 4, 3, 6);
  Parameter row = MakeParam("row", 1, 3, 7);
  Parameter col = MakeParam("col", 4, 1, 8);
  CheckBinary(&m, &row, [](Tape*, Var x, Var y) {
    return ops::AddBroadcastRow(x, y);
  });
  CheckBinary(&m, &col, [](Tape*, Var x, Var y) {
    return ops::AddBroadcastCol(x, y);
  });
}

TEST(OpGradients, Nonlinearities) {
  Parameter a = MakeParam("a", 3, 4, 9);
  CheckUnary(&a, [](Tape*, Var x) { return ops::Sigmoid(x); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::Tanh(x); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::Relu(x); });
}

TEST(OpGradients, SlicesAndTranspose) {
  Parameter a = MakeParam("a", 5, 6, 10);
  CheckUnary(&a, [](Tape*, Var x) { return ops::SliceRows(x, 1, 3); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::SliceCols(x, 2, 3); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::Transpose(x); });
}

TEST(OpGradients, Concats) {
  Parameter a = MakeParam("a", 2, 3, 11);
  Parameter b = MakeParam("b", 2, 3, 12);
  CheckBinary(&a, &b, [](Tape*, Var x, Var y) {
    return ops::ConcatRows({x, y});
  });
  CheckBinary(&a, &b, [](Tape*, Var x, Var y) {
    return ops::ConcatCols({x, y});
  });
}

TEST(OpGradients, Reductions) {
  Parameter a = MakeParam("a", 3, 4, 13);
  CheckUnary(&a, [](Tape*, Var x) { return ops::SumAll(x); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::MeanAll(x); });
  CheckUnary(&a, [](Tape*, Var x) {
    return ops::PickSum(x, {{0, 0}, {2, 3}, {0, 0}});
  });
  CheckUnary(&a, [](Tape*, Var x) { return ops::LogSumExpOverRows(x); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::LogSumExpOverCols(x); });
  CheckUnary(&a, [](Tape*, Var x) { return ops::MaxOverRows(x); });
}

TEST(OpGradients, BceWithLogits) {
  Parameter logits = MakeParam("z", 4, 1, 14);
  Matrix targets(4, 1);
  targets(0, 0) = 1.0;
  targets(2, 0) = 1.0;
  CheckUnary(&logits, [&targets](Tape*, Var x) {
    return ops::BceWithLogits(x, targets);
  });
}

TEST(OpGradients, Conv1D) {
  Parameter x = MakeParam("x", 7, 3, 22);              // T=7, Din=3
  Parameter w = MakeParam("w", 3 * 3, 2, 23);          // K=3, Dout=2
  CheckBinary(&x, &w, [](Tape*, Var xv, Var wv) {
    return ops::Conv1D(xv, wv, /*kernel=*/3, /*dilation=*/1);
  });
  // Dilated variant (zero padding at both ends exercised).
  CheckBinary(&x, &w, [](Tape*, Var xv, Var wv) {
    return ops::Conv1D(xv, wv, /*kernel=*/3, /*dilation=*/2);
  });
}

TEST(LayerGradients, TcnBackbone) {
  Rng rng(24);
  const Matrix input = Matrix::Randn(6, 2, 1.0, &rng);
  Tcn tcn("t", 2, 4, 2, 3, &rng);
  EXPECT_EQ(tcn.receptive_field(), 7u);  // 1 + 2*(2^2-1)

  auto forward = [&](Tape* tape) {
    return WeightedSum(tape, tcn.Forward(tape, tape->Input(input)));
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result = CheckGradients(
      tcn.Params(), loss_fn, loss_and_backward, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

TEST(LayerGradients, DenseAndLstm) {
  Rng rng(15);
  const Matrix input = Matrix::Randn(6, 3, 1.0, &rng);  // T=6, D=3
  Dense dense("d", 3, 2, &rng);
  Lstm lstm("l", 3, 4, &rng);

  std::vector<Parameter*> params = dense.Params();
  for (Parameter* p : lstm.Params()) params.push_back(p);

  auto forward = [&](Tape* tape) {
    Var x = tape->Input(input);
    Var h = lstm.Forward(tape, x);          // 6×4
    Var mixed = dense.Forward(tape, ops::SliceCols(h, 0, 3));
    return WeightedSum(tape, mixed);
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result =
      CheckGradients(params, loss_fn, loss_and_backward, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

TEST(LayerGradients, StackedBiLstmWithBce) {
  Rng rng(16);
  const Matrix input = Matrix::Randn(5, 2, 1.0, &rng);
  StackedBiLstm stack("s", 2, 3, 2, &rng);
  Dense head("h", stack.out_dim(), 1, &rng);
  Matrix targets(5, 1);
  targets(1, 0) = 1.0;
  targets(4, 0) = 1.0;

  std::vector<Parameter*> params = stack.Params();
  for (Parameter* p : head.Params()) params.push_back(p);

  auto forward = [&](Tape* tape) {
    Var x = tape->Input(input);
    Var features = stack.Forward(tape, x);
    Var logits = head.Forward(tape, features);
    return ops::BceWithLogits(logits, targets);
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result =
      CheckGradients(params, loss_fn, loss_and_backward, 1e-6, 1e-4);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

TEST(CrfGradients, NllThroughEmissions) {
  Rng rng(17);
  LinearChainCrf crf("crf", 2, &rng);
  Parameter emissions("e", Matrix::Randn(6, 2, 1.0, &rng));
  const std::vector<int> labels = {0, 1, 1, 0, 1, 0};

  std::vector<Parameter*> params = crf.Params();
  params.push_back(&emissions);

  auto forward = [&](Tape* tape) {
    return crf.Nll(tape, tape->Param(&emissions), labels);
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result =
      CheckGradients(params, loss_fn, loss_and_backward, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

TEST(CrfGradients, BiCrfNll) {
  Rng rng(18);
  BiCrf crf("bicrf", 2, &rng);
  Parameter emissions_f("ef", Matrix::Randn(5, 2, 1.0, &rng));
  Parameter emissions_b("eb", Matrix::Randn(5, 2, 1.0, &rng));
  const std::vector<int> labels = {1, 0, 0, 1, 1};

  std::vector<Parameter*> params = crf.Params();
  params.push_back(&emissions_f);
  params.push_back(&emissions_b);

  auto forward = [&](Tape* tape) {
    return crf.Nll(tape, tape->Param(&emissions_f),
                   tape->Param(&emissions_b), labels);
  };
  auto loss_fn = [&]() {
    Tape tape;
    return forward(&tape).value()(0, 0);
  };
  auto loss_and_backward = [&]() {
    Tape tape;
    Var loss = forward(&tape);
    tape.Backward(loss);
  };
  const GradCheckResult result =
      CheckGradients(params, loss_fn, loss_and_backward, 1e-6, 1e-5);
  EXPECT_TRUE(result.ok) << result.worst_location
                         << " rel=" << result.worst_rel_error;
}

TEST(CrfBehaviour, NllIsNonNegativeAndViterbiFollowsStrongEmissions) {
  Rng rng(19);
  LinearChainCrf crf("crf", 2, &rng);
  Matrix emissions(4, 2);
  const std::vector<int> gold = {1, 0, 1, 1};
  for (size_t t = 0; t < 4; ++t) {
    emissions(t, static_cast<size_t>(gold[t])) = 10.0;  // dominate
  }
  Tape tape;
  Var nll = crf.Nll(&tape, tape.Input(emissions), gold);
  EXPECT_GE(nll.value()(0, 0), 0.0);
  EXPECT_EQ(crf.Viterbi(emissions), gold);

  const Matrix marginals = crf.Marginals(emissions);
  for (size_t t = 0; t < marginals.rows(); ++t) {
    double row_sum = 0.0;
    for (size_t j = 0; j < marginals.cols(); ++j) {
      row_sum += marginals(t, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
    EXPECT_GT(marginals(t, static_cast<size_t>(gold[t])), 0.9);
  }
}

TEST(TapeContract, GradientsAccumulateAcrossTapes) {
  Rng rng(20);
  Parameter p("p", Matrix::Randn(2, 2, 1.0, &rng));
  p.ZeroGrad();
  for (int round = 0; round < 3; ++round) {
    Tape tape;
    Var loss = ops::SumAll(tape.Param(&p));
    tape.Backward(loss);
  }
  // d(sum)/dp = 1 per entry per backward pass; accumulated 3×.
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(p.grad(i, j), 3.0);
    }
  }
}

TEST(TapeContract, ReusedNodeGetsSummedGradient) {
  Rng rng(21);
  Parameter p("p", Matrix::Randn(1, 1, 1.0, &rng));
  p.ZeroGrad();
  Tape tape;
  Var x = tape.Param(&p);
  Var y = ops::Add(x, x);  // y = 2x
  tape.Backward(ops::SumAll(y));
  EXPECT_DOUBLE_EQ(p.grad(0, 0), 2.0);
}

}  // namespace
}  // namespace dlacep
