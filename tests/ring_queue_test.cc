// RingQueue shutdown-race tests. The basic FIFO/accounting behavior is
// covered in runtime_test.cc; this file focuses on the races around
// Close() — producers blocked on a full queue, a consumer blocked on an
// empty one, and Close() arriving concurrently with both — and runs
// under TSan in CI (see the thread-sanitizer job's binary list).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/ring_queue.h"

namespace dlacep {
namespace {

TEST(RingQueueShutdown, CloseUnblocksConsumerOnEmptyQueue) {
  RingQueue<int> queue(4);
  std::atomic<bool> pop_result{true};
  std::thread consumer([&] {
    int out = 0;
    pop_result = queue.Pop(&out);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_FALSE(pop_result.load());
}

TEST(RingQueueShutdown, CloseUnblocksEveryBlockedProducer) {
  RingQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(0));  // queue now full
  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&queue, &rejected, i] {
      if (!queue.Push(i + 1)) rejected.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  for (std::thread& t : producers) t.join();
  // All four producers were blocked on the full queue; Close() must
  // wake and reject every one of them.
  EXPECT_EQ(rejected.load(), kProducers);
  int out = -1;
  EXPECT_TRUE(queue.Pop(&out));  // the pre-close element drains
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(RingQueueShutdown, ConcurrentCloseNeverLosesAcceptedValues) {
  // Producers hammer TryPush while Close() lands mid-stream: every
  // value a producer saw accepted must be popped exactly once, and
  // nothing may be popped that was not accepted.
  RingQueue<int> queue(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.TryPush(i)) accepted.fetch_add(1);
      }
    });
  }
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.Close();
  });
  int popped = 0;
  int out = 0;
  while (queue.Pop(&out)) ++popped;
  for (std::thread& t : producers) t.join();
  closer.join();
  // The consumer stops once the queue is closed AND drained; by then
  // every producer has returned, so `accepted` is final. A TryPush that
  // raced Close() either got in (counted, popped) or was rejected.
  EXPECT_EQ(popped, accepted.load());
}

TEST(RingQueueShutdown, BlockingProducersDrainLosslesslyThroughClose) {
  // Lossless mode: producers Push (block, never drop) a fixed total and
  // close when done. The consumer must see exactly that total even with
  // heavy contention on a tiny queue.
  RingQueue<int> queue(2);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 1500;
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &done] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(i));
      }
      if (done.fetch_add(1) + 1 == kProducers) queue.Close();
    });
  }
  int popped = 0;
  int out = 0;
  while (queue.Pop(&out)) ++popped;
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(popped, kProducers * kPerProducer);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

// ---------------------------------------------------------------------
// Burst variants (the sharded runtime's router/worker hot path).

TEST(RingQueueBurst, PushBurstPopBurstFifoThroughTinyQueue) {
  RingQueue<int> queue(2);
  constexpr int kCount = 500;
  std::thread producer([&] {
    std::vector<int> burst(kCount);
    for (int i = 0; i < kCount; ++i) burst[i] = i;
    // One call delivers the whole burst through a capacity-2 queue:
    // PushBurst blocks chunk by chunk, it never truncates while open.
    EXPECT_EQ(queue.PushBurst(burst.data(), burst.size()),
              static_cast<size_t>(kCount));
    queue.Close();
  });
  std::vector<int> out;
  int expected = 0;
  while (queue.PopBurst(&out, 16) > 0) {
    for (int v : out) EXPECT_EQ(v, expected++);
    out.clear();
  }
  EXPECT_EQ(expected, kCount);
  producer.join();
}

TEST(RingQueueBurst, TryPushBurstAcceptsExactlyWhatFits) {
  RingQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(0));
  ASSERT_TRUE(queue.TryPush(1));
  int burst[] = {2, 3, 4, 5, 6};
  EXPECT_EQ(queue.TryPushBurst(burst, 5), 2u);  // only two slots left
  EXPECT_EQ(queue.TryPushBurst(burst + 2, 3), 0u);  // full: nothing
  int out = -1;
  for (int want = 0; want < 4; ++want) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, want);  // the accepted prefix, in order
  }
  EXPECT_EQ(queue.TryPushBurst(burst + 2, 3), 3u);
  queue.Close();
  EXPECT_EQ(queue.TryPushBurst(burst, 5), 0u);  // closed: nothing
}

TEST(RingQueueBurst, PopBurstHonorsMaxAndDrainsAfterClose) {
  RingQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  std::vector<int> out;
  EXPECT_EQ(queue.PopBurst(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  queue.Close();
  EXPECT_EQ(queue.PopBurst(&out, 16), 2u);  // drains the remainder
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(queue.PopBurst(&out, 16), 0u);  // closed AND drained
}

TEST(RingQueueBurst, TryPopNeverBlocks) {
  RingQueue<int> queue(2);
  int out = -1;
  EXPECT_FALSE(queue.TryPop(&out));  // empty, open
  ASSERT_TRUE(queue.TryPush(7));
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 7);
  queue.Close();
  EXPECT_FALSE(queue.TryPop(&out));  // empty, closed
}

TEST(RingQueueBurst, CloseUnblocksPopBurstOnEmptyQueue) {
  RingQueue<int> queue(4);
  std::atomic<size_t> popped{1};
  std::thread consumer([&] {
    std::vector<int> out;
    popped = queue.PopBurst(&out, 8);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped.load(), 0u);
}

TEST(RingQueueBurst, CloseUnblocksPushBurstAndKeepsAcceptedPrefix) {
  // The shutdown race: a producer mid-PushBurst is blocked on a full
  // queue when Close() lands. It must wake, report how much of the
  // burst was accepted, and that accepted prefix must drain losslessly
  // and in order — nothing past it may ever appear.
  RingQueue<int> queue(2);
  ASSERT_TRUE(queue.TryPush(-2));
  ASSERT_TRUE(queue.TryPush(-1));  // full before the burst starts
  constexpr size_t kBurst = 64;
  std::vector<int> burst(kBurst);
  for (size_t i = 0; i < kBurst; ++i) burst[i] = static_cast<int>(i);
  std::atomic<size_t> pushed{kBurst + 1};
  std::thread producer(
      [&] { pushed = queue.PushBurst(burst.data(), burst.size()); });
  // Drain a handful so the burst makes progress, then close under it.
  int out = 0;
  for (int want = -2; want < 4; ++want) {
    ASSERT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, want);
  }
  queue.Close();
  producer.join();
  std::vector<int> drained;
  while (queue.Pop(&out)) drained.push_back(out);
  // 6 popped pre-close, 2 of them pre-existing: the burst can never
  // have completed through a capacity-2 queue.
  EXPECT_GE(pushed.load(), 4u);
  EXPECT_LT(pushed.load(), kBurst);
  ASSERT_EQ(drained.size(), pushed.load() - 4);
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i], static_cast<int>(i + 4));
  }
}

TEST(RingQueueShutdown, CloseIsIdempotentUnderConcurrentCallers) {
  RingQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(42));
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&queue] { queue.Close(); });
  }
  for (std::thread& t : closers) t.join();
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.TryPush(1));
}

}  // namespace
}  // namespace dlacep
