// RingQueue shutdown-race tests. The basic FIFO/accounting behavior is
// covered in runtime_test.cc; this file focuses on the races around
// Close() — producers blocked on a full queue, a consumer blocked on an
// empty one, and Close() arriving concurrently with both — and runs
// under TSan in CI (see the thread-sanitizer job's binary list).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/ring_queue.h"

namespace dlacep {
namespace {

TEST(RingQueueShutdown, CloseUnblocksConsumerOnEmptyQueue) {
  RingQueue<int> queue(4);
  std::atomic<bool> pop_result{true};
  std::thread consumer([&] {
    int out = 0;
    pop_result = queue.Pop(&out);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_FALSE(pop_result.load());
}

TEST(RingQueueShutdown, CloseUnblocksEveryBlockedProducer) {
  RingQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(0));  // queue now full
  constexpr int kProducers = 4;
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int i = 0; i < kProducers; ++i) {
    producers.emplace_back([&queue, &rejected, i] {
      if (!queue.Push(i + 1)) rejected.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  for (std::thread& t : producers) t.join();
  // All four producers were blocked on the full queue; Close() must
  // wake and reject every one of them.
  EXPECT_EQ(rejected.load(), kProducers);
  int out = -1;
  EXPECT_TRUE(queue.Pop(&out));  // the pre-close element drains
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(queue.Pop(&out));
}

TEST(RingQueueShutdown, ConcurrentCloseNeverLosesAcceptedValues) {
  // Producers hammer TryPush while Close() lands mid-stream: every
  // value a producer saw accepted must be popped exactly once, and
  // nothing may be popped that was not accepted.
  RingQueue<int> queue(8);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::atomic<int> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &accepted] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.TryPush(i)) accepted.fetch_add(1);
      }
    });
  }
  std::thread closer([&queue] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    queue.Close();
  });
  int popped = 0;
  int out = 0;
  while (queue.Pop(&out)) ++popped;
  for (std::thread& t : producers) t.join();
  closer.join();
  // The consumer stops once the queue is closed AND drained; by then
  // every producer has returned, so `accepted` is final. A TryPush that
  // raced Close() either got in (counted, popped) or was rejected.
  EXPECT_EQ(popped, accepted.load());
}

TEST(RingQueueShutdown, BlockingProducersDrainLosslesslyThroughClose) {
  // Lossless mode: producers Push (block, never drop) a fixed total and
  // close when done. The consumer must see exactly that total even with
  // heavy contention on a tiny queue.
  RingQueue<int> queue(2);
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 1500;
  std::atomic<int> done{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &done] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(i));
      }
      if (done.fetch_add(1) + 1 == kProducers) queue.Close();
    });
  }
  int popped = 0;
  int out = 0;
  while (queue.Pop(&out)) ++popped;
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(popped, kProducers * kPerProducer);
  EXPECT_LE(queue.high_water(), queue.capacity());
}

TEST(RingQueueShutdown, CloseIsIdempotentUnderConcurrentCallers) {
  RingQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(42));
  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&queue] { queue.Close(); });
  }
  for (std::thread& t : closers) t.join();
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(queue.Pop(&out));
  EXPECT_FALSE(queue.TryPush(1));
}

}  // namespace
}  // namespace dlacep
