// Differential / property test pass over the whole pipeline:
//
//  * RELAY-ALL EQUIVALENCE — with a filter that relays every event
//    (pass-through, i.e. threshold 0), the approximate pipeline must be
//    exact: the batch DlacepPipeline and the online runtime both
//    produce the identical match set to running the CEP engine over the
//    raw stream, across seeds × window geometries × thread counts.
//
//  * ACCOUNTING — relayed + filtered + dropped + quarantined ==
//    ingested holds under lossless, dropping, and fault/quarantine
//    regimes, and the process-global obs counters agree with the
//    per-run RuntimeStats number for number.
//
//  * ENGINE WORK INVARIANT — every NFA candidate transition either
//    prunes or becomes a partial match:
//    transitions == partial_matches + partial_matches_pruned, in both
//    EngineStats and the registry counters.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "dlacep/extractor.h"
#include "dlacep/oracle_filter.h"
#include "dlacep/pipeline.h"
#include "obs/metrics.h"
#include "obs/stages.h"
#include "runtime/online.h"
#include "runtime/source.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

MatchSet ExactMatches(const Pattern& pattern, const EventStream& stream) {
  std::vector<const Event*> all;
  all.reserve(stream.size());
  for (size_t i = 0; i < stream.size(); ++i) all.push_back(&stream[i]);
  CepExtractor extractor(pattern);
  MatchSet out;
  EXPECT_TRUE(extractor.Extract(std::move(all), &out).ok());
  return out;
}

void ExpectSameMatches(const MatchSet& got, const MatchSet& want) {
  EXPECT_EQ(got.size(), want.size());
  EXPECT_EQ(got.IntersectionSize(want), want.size());
}

// ---------------------------------------------------------------------
// Relay-all equivalence: approximate pipeline with threshold 0 == exact.

TEST(RelayAllDifferential, BatchAndOnlineEqualExactCep) {
  struct Geometry {
    size_t mark;
    size_t step;
  };
  const Geometry geometries[] = {{0, 0}, {11, 4}, {16, 8}};
  for (uint64_t seed : {7u, 19u, 31u}) {
    const EventStream stream = SmallStream(400, seed);
    const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
    const MatchSet exact = ExactMatches(pattern, stream);
    EXPECT_GT(exact.size(), 0u) << "seed " << seed << " finds no matches; "
                                << "the differential would be vacuous";
    for (const Geometry& g : geometries) {
      for (size_t threads : {1u, 2u, 4u}) {
        DlacepConfig batch_config;
        batch_config.num_threads = threads;
        batch_config.mark_size = g.mark;
        batch_config.step_size = g.step;
        DlacepPipeline pipeline(pattern,
                                std::make_unique<PassThroughFilter>(),
                                batch_config);
        const PipelineResult batch = pipeline.Evaluate(stream);
        ExpectSameMatches(batch.matches, exact);
        EXPECT_EQ(batch.marked_events, stream.size());

        PassThroughFilter filter;
        OnlineConfig online_config;
        online_config.num_threads = threads;
        online_config.mark_size = g.mark;
        online_config.step_size = g.step;
        online_config.overload.enabled = false;
        OnlineDlacep online(pattern, &filter, online_config);
        ReplaySource source(&stream);
        const OnlineResult result = online.Run(&source);
        ExpectSameMatches(result.matches, exact);
        EXPECT_EQ(result.marked_ids, batch.marked_ids)
            << "seed=" << seed << " mark=" << g.mark << " step=" << g.step
            << " threads=" << threads;
        EXPECT_TRUE(result.stats.Accounted()) << result.stats.ToString();
        EXPECT_EQ(result.stats.events_filtered, 0u);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Accounting identity, cross-checked against the metrics registry.

/// Snapshot of the obs counters the runtime mirrors into RuntimeStats.
struct CounterSnapshot {
  uint64_t ingested, dropped, relayed, filtered, quarantined;
  uint64_t windows_closed, windows_quarantined, windows_degraded;
  uint64_t health_violations, health_degrades, health_recoveries;

  static CounterSnapshot Take() {
    return {obs::EventsIngested()->Value(),
            obs::EventsDropped()->Value(),
            obs::EventsRelayed()->Value(),
            obs::EventsFiltered()->Value(),
            obs::EventsQuarantined()->Value(),
            obs::WindowsClosed()->Value(),
            obs::WindowsQuarantined()->Value(),
            obs::WindowsDegraded()->Value(),
            obs::HealthViolations()->Value(),
            obs::HealthDegrades()->Value(),
            obs::HealthRecoveries()->Value()};
  }
};

/// One fresh-registry online run; returns the result with the counter
/// snapshot taken right after. The registry is process-global while
/// RuntimeStats is per-run, so each cross-check resets first.
OnlineResult RunWithFreshRegistry(OnlineDlacep* online, StreamSource* source,
                                  CounterSnapshot* counters) {
  obs::MetricsRegistry::Global().ResetValues();
  const OnlineResult result = online->Run(source);
  *counters = CounterSnapshot::Take();
  return result;
}

void ExpectCountersMatchStats(const CounterSnapshot& c,
                              const RuntimeStats& s) {
  EXPECT_EQ(c.ingested, s.events_ingested);
  EXPECT_EQ(c.dropped, s.events_dropped_queue);
  EXPECT_EQ(c.relayed, s.events_relayed);
  EXPECT_EQ(c.filtered, s.events_filtered);
  EXPECT_EQ(c.quarantined, s.events_quarantined);
  EXPECT_EQ(c.windows_closed, s.windows_closed);
  EXPECT_EQ(c.windows_quarantined, s.windows_quarantined);
  EXPECT_EQ(c.windows_degraded, s.windows_degraded);
  EXPECT_EQ(c.health_violations, s.health_violations);
  EXPECT_EQ(c.health_degrades, s.health_degrades);
  EXPECT_EQ(c.health_recoveries, s.health_recoveries);
  // The identity holds in the counters themselves, not just the stats.
  EXPECT_EQ(c.relayed + c.filtered + c.dropped + c.quarantined, c.ingested);
  EXPECT_TRUE(s.Accounted()) << s.ToString();
}

TEST(AccountingDifferential, LosslessRunCountersEqualStats) {
  const EventStream stream = SmallStream(600, 43);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  PassThroughFilter filter;
  OnlineConfig config;
  config.num_threads = 2;
  config.overload.enabled = false;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  CounterSnapshot counters;
  const OnlineResult result = RunWithFreshRegistry(&online, &source,
                                                   &counters);
  ExpectCountersMatchStats(counters, result.stats);
  EXPECT_EQ(counters.ingested, stream.size());
  EXPECT_EQ(counters.dropped, 0u);
  EXPECT_EQ(counters.relayed, stream.size());
}

/// Pass-through whose first `slow_calls` markings sleep — fills the
/// bounded queue so the dropping producer actually drops.
class SlowStartFilter : public StreamFilter {
 public:
  SlowStartFilter(int slow_calls, std::chrono::milliseconds delay)
      : remaining_(slow_calls), delay_(delay) {}
  std::string name() const override { return "slow-start"; }
  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    if (remaining_.fetch_sub(1) > 0) std::this_thread::sleep_for(delay_);
    return std::vector<int>(range.size(), 1);
  }

 private:
  mutable std::atomic<int> remaining_;
  std::chrono::milliseconds delay_;
};

TEST(AccountingDifferential, DroppingRunCountersEqualStats) {
  const EventStream stream = SmallStream(2500, 47);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  SlowStartFilter filter(/*slow_calls=*/4, std::chrono::milliseconds(40));
  OnlineConfig config;
  config.queue_capacity = 8;
  config.drop_when_full = true;
  config.num_threads = 2;
  config.max_windows_in_flight = 2;
  config.overload.enabled = true;
  config.overload.high_watermark = 0.5;
  config.overload.dwell_windows = 1;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  CounterSnapshot counters;
  const OnlineResult result = RunWithFreshRegistry(&online, &source,
                                                   &counters);
  ExpectCountersMatchStats(counters, result.stats);
  EXPECT_GT(counters.dropped, 0u);
  // Every controller transition was mirrored into a labelled counter.
  uint64_t transition_total = 0;
  for (int from = 0; from <= 3; ++from) {
    for (int to = 0; to <= 3; ++to) {
      if (from != to) {
        transition_total += obs::OverloadTransitions(from, to)->Value();
      }
    }
  }
  EXPECT_EQ(transition_total, result.stats.transitions.size());
  for (const OverloadTransition& t : result.stats.transitions) {
    EXPECT_GE(obs::OverloadTransitions(t.from, t.to)->Value(), 1u);
  }
}

/// Sentinel marks for every window starting before `bad_before`, then
/// healthy relay-all — drives quarantine, degraded mode, and probed
/// recovery (same shape as tests/fault_injection_test.cc).
class FlakyFilter : public StreamFilter {
 public:
  explicit FlakyFilter(size_t bad_before) : bad_before_(bad_before) {}
  std::string name() const override { return "flaky"; }
  std::vector<int> Mark(const EventStream&,
                        WindowRange range) const override {
    return std::vector<int>(range.size(), 1);
  }
  std::vector<int> MarkOnline(const EventStream& window, size_t stream_begin,
                              InferenceContext*, double) const override {
    if (stream_begin < bad_before_) {
      return std::vector<int>(window.size(), kInvalidMark);
    }
    return std::vector<int>(window.size(), 1);
  }

 private:
  size_t bad_before_;
};

TEST(AccountingDifferential, QuarantineRunCountersEqualStats) {
  const EventStream stream = SmallStream(800, 53);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 2, 8);
  FlakyFilter filter(/*bad_before=*/100);
  OnlineConfig config;
  config.num_threads = 2;
  config.overload.enabled = false;
  config.health.probe_period = 2;
  config.health.probe_passes = 2;
  OnlineDlacep online(pattern, &filter, config);
  ReplaySource source(&stream);
  CounterSnapshot counters;
  const OnlineResult result = RunWithFreshRegistry(&online, &source,
                                                   &counters);
  ExpectCountersMatchStats(counters, result.stats);
  EXPECT_GT(counters.quarantined, 0u);
  EXPECT_GT(counters.windows_quarantined, 0u);
  EXPECT_GE(counters.health_degrades, 1u);
  EXPECT_GE(counters.health_recoveries, 1u);
  EXPECT_EQ(obs::ProbesRun()->Value(), result.stats.probes_run);
  EXPECT_EQ(obs::ProbesPassed()->Value(), result.stats.probes_passed);
  // Quarantine relays unfiltered, so recall against exact CEP is 1.0.
  const MatchSet exact = ExactMatches(pattern, stream);
  EXPECT_EQ(result.matches.IntersectionSize(exact), exact.size());
}

// ---------------------------------------------------------------------
// NFA work invariant, in EngineStats and in the registry counters.

TEST(EngineWorkInvariant, TransitionsSplitIntoStoredAndPruned) {
  // The identity holds per engine: every examined candidate either
  // prunes or is stored as a partial match. The obs counters are
  // labelled by engine name, so each engine's totals are checked
  // against its own registry slice (adaptive folds its delegate's
  // deltas into the "adaptive" label).
  const struct {
    EngineKind kind;
    const char* label;
  } engines[] = {{EngineKind::kNfa, "nfa"},
                 {EngineKind::kTree, "zstream-tree"},
                 {EngineKind::kLazy, "lazy"},
                 {EngineKind::kAdaptive, "adaptive"}};
  obs::MetricsRegistry::Global().ResetValues();
  for (const auto& engine : engines) {
    uint64_t total_transitions = 0;
    for (uint64_t seed : {3u, 13u, 23u}) {
      const EventStream stream = SmallStream(500, seed, /*num_types=*/4);
      // Longer pattern with cross-variable conditions: plenty of
      // pruning.
      const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 12);
      std::vector<const Event*> all;
      for (size_t i = 0; i < stream.size(); ++i) all.push_back(&stream[i]);
      CepExtractor extractor(pattern, engine.kind);
      MatchSet out;
      ASSERT_TRUE(extractor.Extract(std::move(all), &out).ok());
      const EngineStats& stats = extractor.stats();
      EXPECT_GT(stats.transitions, 0u) << engine.label;
      EXPECT_GT(stats.partial_matches_pruned, 0u)
          << engine.label << " seed " << seed;
      EXPECT_EQ(stats.transitions,
                stats.partial_matches + stats.partial_matches_pruned)
          << engine.label << " seed " << seed;
      EXPECT_EQ(stats.evaluations, 1u) << engine.label;
      EXPECT_GT(stats.work_per_evaluate(), 0.0) << engine.label;
      total_transitions += stats.transitions;
    }
    // The labelled counters carried the same totals across all three
    // runs.
    EXPECT_EQ(obs::CepTransitions(engine.label)->Value(), total_transitions)
        << engine.label;
    EXPECT_EQ(obs::CepTransitions(engine.label)->Value(),
              obs::CepPartialMatches(engine.label)->Value() +
                  obs::CepPartialMatchesPruned(engine.label)->Value())
        << engine.label;
  }
}

}  // namespace
}  // namespace dlacep
