// Engine budget tests: the cooperative abort contract shared by all
// three CEP engines —
//
//   * a blown partial-match budget aborts Evaluate() with
//     kBudgetExceeded and leaves the output MatchSet untouched
//     (all-or-nothing per call, no half-merged results);
//   * an aborted engine stays reusable: a later Evaluate() that fits
//     the budget returns exactly what a fresh engine returns;
//   * budget 0 disables everything — results and stats are identical
//     to the unbudgeted path;
//   * a generous budget never changes answers;
//   * deadline_seconds aborts long evaluations the same way.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cep/engine.h"
#include "common/status.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::AscendingSeqPattern;
using testing_util::SmallStream;

const EngineKind kKinds[] = {EngineKind::kNfa, EngineKind::kTree,
                             EngineKind::kLazy};

bool SameMatches(const MatchSet& a, const MatchSet& b) {
  return a.size() == b.size() && a.IntersectionSize(b) == a.size();
}

std::unique_ptr<CepEngine> MakeEngine(EngineKind kind,
                                      const Pattern& pattern,
                                      const EngineOptions& options) {
  auto engine = CreateEngine(kind, pattern, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine.value());
}

MatchSet Reference(EngineKind kind, const Pattern& pattern,
                   const EventStream& stream) {
  auto engine = MakeEngine(kind, pattern, EngineOptions{});
  MatchSet matches;
  EXPECT_TRUE(
      engine->Evaluate({stream.events().data(), stream.size()}, &matches)
          .ok());
  return matches;
}

TEST(EngineBudget, BlownBudgetAbortsAndLeavesOutputUntouched) {
  const EventStream stream = SmallStream(3000, 17);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 60);
  for (const EngineKind kind : kKinds) {
    EngineOptions options;
    options.partial_match_budget = 10;
    auto engine = MakeEngine(kind, pattern, options);
    MatchSet matches;
    const Status status =
        engine->Evaluate({stream.events().data(), stream.size()}, &matches);
    EXPECT_EQ(status.code(), StatusCode::kBudgetExceeded)
        << engine->name() << ": " << status.ToString();
    EXPECT_EQ(matches.size(), 0u)
        << engine->name() << " leaked partial results past an abort";
    EXPECT_EQ(engine->stats().budget_aborts, 1u) << engine->name();
  }
}

TEST(EngineBudget, AbortedEngineStaysReusable) {
  const EventStream big = SmallStream(3000, 17);
  const EventStream small = SmallStream(120, 23);
  const Pattern pattern = AscendingSeqPattern(big.schema_ptr(), 3, 60);
  for (const EngineKind kind : kKinds) {
    EngineOptions options;
    options.partial_match_budget = 2000;
    auto engine = MakeEngine(kind, pattern, options);
    MatchSet blown;
    EXPECT_EQ(
        engine->Evaluate({big.events().data(), big.size()}, &blown).code(),
        StatusCode::kBudgetExceeded)
        << engine->name();
    // The small span fits the budget: the same engine instance must now
    // answer it exactly as a fresh one does.
    MatchSet reused;
    EXPECT_TRUE(
        engine->Evaluate({small.events().data(), small.size()}, &reused)
            .ok())
        << engine->name();
    const MatchSet fresh = Reference(kind, pattern, small);
    EXPECT_TRUE(SameMatches(reused, fresh))
        << engine->name() << ": reused " << reused.size() << " vs fresh "
        << fresh.size();
  }
}

TEST(EngineBudget, ZeroAndGenerousBudgetsNeverChangeAnswers) {
  const EventStream stream = SmallStream(1200, 5);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 40);
  for (const EngineKind kind : kKinds) {
    const MatchSet reference = Reference(kind, pattern, stream);
    for (const uint64_t budget : {uint64_t{0}, uint64_t{1} << 40}) {
      EngineOptions options;
      options.partial_match_budget = budget;
      auto engine = MakeEngine(kind, pattern, options);
      MatchSet matches;
      EXPECT_TRUE(
          engine->Evaluate({stream.events().data(), stream.size()}, &matches)
              .ok())
          << engine->name() << " budget=" << budget;
      EXPECT_TRUE(SameMatches(matches, reference))
          << engine->name() << " budget=" << budget;
      EXPECT_EQ(engine->stats().budget_aborts, 0u) << engine->name();
    }
  }
}

TEST(EngineBudget, DeadlineAbortsLongEvaluations) {
  const EventStream stream = SmallStream(4000, 29);
  const Pattern pattern = AscendingSeqPattern(stream.schema_ptr(), 3, 120);
  for (const EngineKind kind : kKinds) {
    EngineOptions options;
    options.deadline_seconds = 1e-9;  // any elapsed time blows it
    auto engine = MakeEngine(kind, pattern, options);
    MatchSet matches;
    const Status status =
        engine->Evaluate({stream.events().data(), stream.size()}, &matches);
    EXPECT_EQ(status.code(), StatusCode::kBudgetExceeded)
        << engine->name() << ": " << status.ToString();
    EXPECT_EQ(matches.size(), 0u) << engine->name();
  }
}

}  // namespace
}  // namespace dlacep
