// Edge-case and robustness tests for the CEP engines: degenerate
// streams, degenerate windows, blank events, the partial-match storage
// cap, and engine statistics accounting.

#include <gtest/gtest.h>

#include "cep/engine.h"
#include "cep/oracle.h"
#include "pattern/builder.h"
#include "test_util.h"

namespace dlacep {
namespace {

using testing_util::SmallStream;

Pattern SimpleSeq(std::shared_ptr<const Schema> schema, size_t window) {
  PatternBuilder b(std::move(schema));
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "b"));
  return b.BuildOrDie(std::move(root), WindowSpec::Count(window));
}

class AllEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(AllEngines, EmptyStreamYieldsNoMatches) {
  auto schema = MakeSyntheticSchema(3, 1);
  const Pattern pattern = SimpleSeq(schema, 5);
  auto engine = CreateEngine(GetParam(), pattern);
  ASSERT_TRUE(engine.ok());
  MatchSet out;
  EXPECT_TRUE(engine.value()->Evaluate({}, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(AllEngines, SingleEventCannotMatchAPair) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0.0, {1.0});
  const Pattern pattern = SimpleSeq(schema, 5);
  auto engine = CreateEngine(GetParam(), pattern);
  ASSERT_TRUE(engine.ok());
  MatchSet out;
  ASSERT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()}, &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(AllEngines, WindowOfOneForbidsMultiEventMatches) {
  const EventStream stream = SmallStream(40, 101);
  const Pattern pattern = SimpleSeq(stream.schema_ptr(), 1);
  auto engine = CreateEngine(GetParam(), pattern);
  ASSERT_TRUE(engine.ok());
  MatchSet out;
  ASSERT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()}, &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST_P(AllEngines, BlankEventsAreIgnoredButConsumeIdSpace) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0.0, {1.0});   // A, id 0
  for (int i = 0; i < 5; ++i) stream.AppendBlank(1.0);  // ids 1..5
  stream.Append(1, 6.0, {1.0});   // B, id 6

  // Window 7 spans the id gap; window 4 does not.
  auto engine_wide = CreateEngine(GetParam(), SimpleSeq(schema, 7));
  MatchSet wide;
  ASSERT_TRUE(engine_wide.value()
                  ->Evaluate({stream.events().data(), stream.size()},
                             &wide)
                  .ok());
  EXPECT_EQ(wide.size(), 1u);

  auto engine_narrow = CreateEngine(GetParam(), SimpleSeq(schema, 4));
  MatchSet narrow;
  ASSERT_TRUE(engine_narrow.value()
                  ->Evaluate({stream.events().data(), stream.size()},
                             &narrow)
                  .ok());
  EXPECT_TRUE(narrow.empty());
}

TEST_P(AllEngines, StatsAccumulateAcrossEvaluations) {
  const EventStream stream = SmallStream(50, 102);
  const Pattern pattern = SimpleSeq(stream.schema_ptr(), 6);
  auto engine = CreateEngine(GetParam(), pattern);
  ASSERT_TRUE(engine.ok());
  MatchSet out;
  const std::span<const Event> span(stream.events().data(), stream.size());
  ASSERT_TRUE(engine.value()->Evaluate(span, &out).ok());
  const uint64_t after_one = engine.value()->stats().events_processed;
  ASSERT_TRUE(engine.value()->Evaluate(span, &out).ok());
  EXPECT_EQ(engine.value()->stats().events_processed, 2 * after_one);
  engine.value()->ResetStats();
  EXPECT_EQ(engine.value()->stats().events_processed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Engines, AllEngines,
                         ::testing::Values(EngineKind::kNfa,
                                           EngineKind::kTree,
                                           EngineKind::kLazy));

TEST(NfaStorageCap, DropsInsteadOfExploding) {
  const EventStream stream = SmallStream(200, 103, /*num_types=*/2);
  PatternBuilder b(stream.schema_ptr());
  auto root = b.Seq(b.Prim("A", "a"), b.Prim("A", "a2"),
                    b.Prim("B", "bb"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(50));

  EngineOptions options;
  options.max_partial_matches = 100;  // absurdly small
  auto engine = CreateEngine(EngineKind::kNfa, pattern, options);
  ASSERT_TRUE(engine.ok());
  MatchSet out;
  ASSERT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()}, &out)
                  .ok());
  EXPECT_GT(engine.value()->stats().partial_matches_dropped, 0u);
}

TEST(KleeneBounds, MinRepsTwoRequiresTwoEvents) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(1, 1, {0.0});  // B (only one)
  stream.Append(2, 2, {0.0});  // C

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"),
                    b.Kleene(b.Prim("B", "k"), 2, 3),
                    b.Prim("C", "c"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(10));
  const MatchSet matches = EnumerateAllMatches(
      pattern, {stream.events().data(), stream.size()});
  EXPECT_TRUE(matches.empty());

  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  MatchSet nfa_out;
  ASSERT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()},
                             &nfa_out)
                  .ok());
  EXPECT_TRUE(nfa_out.empty());
}

TEST(KleeneBounds, MaxRepsCapsAbsorption) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});                       // A
  for (int i = 0; i < 4; ++i) stream.Append(1, i + 1, {0.0});  // 4 × B
  stream.Append(2, 5, {0.0});                       // C

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"),
                    b.Kleene(b.Prim("B", "k"), 1, 2),
                    b.Prim("C", "c"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(10));
  const MatchSet matches = EnumerateAllMatches(
      pattern, {stream.events().data(), stream.size()});
  // Any match binds at most 2 of the 4 B events: C(4,1) + C(4,2) = 10.
  EXPECT_EQ(matches.size(), 10u);
  for (const Match& m : matches) {
    EXPECT_LE(m.ids.size(), 4u);  // a + ≤2 B + c
  }
}

TEST(NegationEdge, EmptyIntervalCannotViolate) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0, {0.0});  // A
  stream.Append(1, 1, {0.0});  // B — adjacent: no room for a C between
  stream.Append(2, 2, {0.0});  // C after B is irrelevant

  PatternBuilder b(schema);
  auto root = b.Seq(b.Prim("A", "a"), b.Neg(b.Prim("C", "nc")),
                    b.Prim("B", "bb"));
  const Pattern pattern =
      b.BuildOrDie(std::move(root), WindowSpec::Count(10));
  const MatchSet matches = EnumerateAllMatches(
      pattern, {stream.events().data(), stream.size()});
  EXPECT_EQ(matches.size(), 1u);
}

TEST(TimeWindows, NfaRespectsTimestampSpanIndependentOfIds) {
  auto schema = MakeSyntheticSchema(3, 1);
  EventStream stream(schema);
  stream.Append(0, 0.0, {0.0});   // A at t=0
  stream.Append(1, 100.0, {0.0});  // B at t=100 — adjacent ids, far times
  const Pattern pattern = [&] {
    PatternBuilder b(schema);
    auto root = b.Seq(b.Prim("A", "a"), b.Prim("B", "bb"));
    return b.BuildOrDie(std::move(root), WindowSpec::Time(50.0));
  }();
  auto engine = CreateEngine(EngineKind::kNfa, pattern);
  MatchSet out;
  ASSERT_TRUE(engine.value()
                  ->Evaluate({stream.events().data(), stream.size()}, &out)
                  .ok());
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace dlacep
